#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <future>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace thrifty {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  auto future = pool.Submit([] {});
  future.get();
}

TEST(ThreadPoolTest, PropagatesTaskExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.Submit([] {});
  auto bad = pool.Submit([] { throw std::runtime_error("trial failed"); });
  auto after = pool.Submit([] {});
  ok.get();
  EXPECT_THROW(bad.get(), std::runtime_error);
  after.get();  // the worker survived the throwing task
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++counter;
      });
    }
  }  // destructor must finish all 50 before joining
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, TasksRunOffTheCallingThread) {
  ThreadPool pool(2);
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id worker;
  pool.Submit([&worker] { worker = std::this_thread::get_id(); }).get();
  EXPECT_NE(worker, caller);
}

TEST(ParallelForTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(&pool, hits.size(), [&](size_t i) { ++hits[i]; });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ParallelForTest, NullPoolRunsInlineInOrder) {
  std::vector<size_t> order;
  std::thread::id caller = std::this_thread::get_id();
  ParallelFor(nullptr, 5, [&](size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, HandlesZeroAndSingleIteration) {
  ThreadPool pool(2);
  int calls = 0;
  ParallelFor(&pool, 0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(&pool, 1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, NestedCallsOnOnePoolDoNotDeadlock) {
  // Tasks that wait on sub-work queued behind them would deadlock a naive
  // future-join; ParallelFor's caller-participates drain must not.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  ParallelFor(&pool, 4, [&](size_t) {
    ParallelFor(&pool, 8, [&](size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ParallelForTest, RethrowsLowestIndexException) {
  ThreadPool pool(4);
  for (int attempt = 0; attempt < 20; ++attempt) {
    try {
      ParallelFor(&pool, 100, [&](size_t i) {
        if (i == 7 || i == 93) {
          throw std::runtime_error("index " + std::to_string(i));
        }
      });
      FAIL() << "expected ParallelFor to rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "index 7");
    }
  }
}

TEST(ParallelForTest, KeepsRunningRemainingIndicesAfterAnException) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(ParallelFor(&pool, 50,
                           [&](size_t i) {
                             ++ran;
                             if (i == 0) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 50);
}

}  // namespace
}  // namespace thrifty
