#include "scaling/overactive.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace thrifty {
namespace {

ActivityVector MakeVector(TenantId id, size_t num_epochs,
                          std::initializer_list<std::pair<size_t, size_t>>
                              ranges) {
  DynamicBitmap bits(num_epochs);
  for (auto [begin, end] : ranges) bits.SetRange(begin, end);
  return ActivityVector::FromBitmap(id, bits);
}

TEST(OveractiveTest, AllQuietMeansNobodyOveractive) {
  std::vector<ActivityVector> members;
  for (TenantId id = 0; id < 6; ++id) {
    members.push_back(MakeVector(id, 100, {{id * 10ul, id * 10ul + 5}}));
  }
  auto result = IdentifyOveractiveTenants(members, 3, 0.999);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(OveractiveTest, HyperactiveTenantIsSingledOut) {
  // Five tenants with small disjoint bursts plus one active everywhere.
  std::vector<ActivityVector> members;
  for (TenantId id = 0; id < 5; ++id) {
    members.push_back(MakeVector(id, 100, {{id * 10ul, id * 10ul + 8}}));
  }
  members.push_back(MakeVector(99, 100, {{0, 100}}));
  // R = 1: the always-active tenant collides with everyone.
  auto result = IdentifyOveractiveTenants(members, 1, 0.95);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0], 99);
}

TEST(OveractiveTest, MultipleOveractiveTenants) {
  std::vector<ActivityVector> members;
  for (TenantId id = 0; id < 4; ++id) {
    members.push_back(MakeVector(id, 100, {{id * 5ul, id * 5ul + 3}}));
  }
  members.push_back(MakeVector(50, 100, {{0, 90}}));
  members.push_back(MakeVector(51, 100, {{5, 95}}));
  auto result = IdentifyOveractiveTenants(members, 1, 0.95);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);
  EXPECT_TRUE(std::count(result->begin(), result->end(), 50));
  EXPECT_TRUE(std::count(result->begin(), result->end(), 51));
}

TEST(OveractiveTest, RespectsReplicationFactor) {
  // Three tenants fully overlapping: fine at R = 3, two evicted at R = 1.
  std::vector<ActivityVector> members;
  for (TenantId id = 0; id < 3; ++id) {
    members.push_back(MakeVector(id, 100, {{0, 50}}));
  }
  auto at_r3 = IdentifyOveractiveTenants(members, 3, 0.999);
  ASSERT_TRUE(at_r3.ok());
  EXPECT_TRUE(at_r3->empty());
  auto at_r1 = IdentifyOveractiveTenants(members, 1, 0.999);
  ASSERT_TRUE(at_r1.ok());
  EXPECT_EQ(at_r1->size(), 2u);
}

TEST(OveractiveTest, EmptyGroupIsAnError) {
  std::vector<ActivityVector> members;
  EXPECT_EQ(IdentifyOveractiveTenants(members, 3, 0.999).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MostActiveTenant(members).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(OveractiveTest, MismatchedVectorLengthsRejected) {
  std::vector<ActivityVector> members;
  members.push_back(MakeVector(0, 100, {{0, 5}}));
  members.push_back(MakeVector(1, 50, {{0, 5}}));
  EXPECT_EQ(IdentifyOveractiveTenants(members, 3, 0.999).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(OveractiveTest, MostActiveTenantPicksLargestFootprint) {
  std::vector<ActivityVector> members;
  members.push_back(MakeVector(1, 100, {{0, 10}}));
  members.push_back(MakeVector(2, 100, {{0, 40}}));
  members.push_back(MakeVector(3, 100, {{0, 25}}));
  auto result = MostActiveTenant(members);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 2);
}

}  // namespace
}  // namespace thrifty
