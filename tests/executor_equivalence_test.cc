// Randomized equivalence harness for the virtual-time processor-sharing
// executor: MppdbInstance in kVirtualTime (finish-tag min-heap) and
// kDenseReference (linear sweep) mode must emit byte-identical
// (finish_time, query_id, max_concurrency) completion streams and agree on
// every derived observable (busy time, active-tenant counts) over arbitrary
// interleavings of arrivals, completions, node failures and repairs. Every
// randomized case derives its script from an id-keyed Rng fork, so a failure
// names the case id and replays deterministically.
//
// The harness also carries the brute-force max_concurrency oracle: the
// historical O(k) write-back semantics ("highest concurrency seen during the
// query's life, sampled after each admission") replayed in test code and
// checked against the monotone-deque implementation in both modes.

#include <memory>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "mppdb/instance.h"
#include "mppdb/query_model.h"
#include "sim/engine.h"

namespace thrifty {
namespace {

QueryTemplate MakeTemplate(TemplateId id, double work_seconds_per_gb,
                           double serial = 0.0) {
  QueryTemplate t;
  t.id = id;
  t.name = "q" + std::to_string(id);
  t.work_seconds_per_gb = work_seconds_per_gb;
  t.serial_fraction = serial;
  return t;
}

enum class OpKind { kSubmit, kFail, kRepair };

struct Op {
  SimTime time = 0;
  OpKind kind = OpKind::kSubmit;
  TenantId tenant = 1;
  QueryTemplate tmpl;
};

struct Script {
  int nodes = 4;
  std::vector<std::pair<TenantId, double>> tenants;  // (id, data_gb)
  std::vector<Op> ops;
};

// Replays `script` against one instance and returns a textual trace of every
// observable: completion stream lines (in callback order) interleaved with
// post-op samples. Two executor modes are equivalent iff their traces match
// byte for byte. `oracle_failures` collects max_concurrency mismatches
// against the brute-force O(k) write-back oracle.
std::vector<std::string> RunScript(const Script& script, PsExecutorMode mode,
                                   std::vector<std::string>* oracle_failures) {
  SimEngine engine;
  SimCostGauge gauge;
  engine.set_cost_gauge(&gauge);
  MppdbInstance instance(0, script.nodes, &engine, InstanceState::kOnline,
                         mode);
  for (const auto& [tenant, gb] : script.tenants) {
    instance.AddTenant(tenant, gb);
  }

  std::vector<std::string> trace;
  // Brute-force oracle: per running query, the max concurrency sampled after
  // each admission (the pre-refactor O(k) write-back semantics).
  std::unordered_map<QueryId, int> oracle_max;

  instance.set_completion_callback([&](const QueryCompletion& c) {
    std::ostringstream line;
    line << "done t=" << c.finish_time << " q=" << c.query_id
         << " tenant=" << c.tenant_id << " lat=" << c.MeasuredLatency()
         << " maxk=" << c.max_concurrency;
    trace.push_back(line.str());
    auto it = oracle_max.find(c.query_id);
    if (it == oracle_max.end()) {
      oracle_failures->push_back("completion for unknown query " +
                                 std::to_string(c.query_id));
    } else {
      if (it->second != c.max_concurrency) {
        oracle_failures->push_back(
            "q=" + std::to_string(c.query_id) + " oracle max_concurrency " +
            std::to_string(it->second) + " != reported " +
            std::to_string(c.max_concurrency));
      }
      oracle_max.erase(it);
    }
  });

  QueryId next_query_id = 100;
  for (const Op& op : script.ops) {
    engine.ScheduleAt(op.time, [&, op](SimTime now) {
      switch (op.kind) {
        case OpKind::kSubmit: {
          QuerySubmission s;
          s.query_id = next_query_id++;
          s.tenant_id = op.tenant;
          s.template_id = op.tmpl.id;
          Status status = instance.Submit(s, op.tmpl);
          if (status.ok()) {
            int k = instance.Concurrency();
            for (auto& [qid, mk] : oracle_max) mk = std::max(mk, k);
            oracle_max[s.query_id] = k;
          }
          break;
        }
        case OpKind::kFail:
          (void)instance.InjectNodeFailure();
          break;
        case OpKind::kRepair:
          (void)instance.RepairNode();
          break;
      }
      std::ostringstream line;
      line << "op t=" << now << " k=" << instance.Concurrency()
           << " active=" << instance.ActiveTenantCount()
           << " failed=" << instance.failed_nodes()
           << " free=" << instance.IsFree();
      for (const auto& [tenant, gb] : script.tenants) {
        line << " s" << tenant << "=" << instance.IsServingTenant(tenant);
      }
      trace.push_back(line.str());
    });
  }
  engine.Run();

  std::ostringstream tail;
  tail << "end t=" << engine.now() << " completed="
       << instance.completed_queries() << " busy=" << instance.busy_time()
       << " events=" << engine.events_processed();
  trace.push_back(tail.str());
  if (!oracle_max.empty()) {
    trace.push_back("unfinished=" + std::to_string(oracle_max.size()));
  }
  return trace;
}

void ExpectModesEquivalent(const Script& script) {
  std::vector<std::string> oracle_virtual, oracle_dense;
  std::vector<std::string> trace_virtual =
      RunScript(script, PsExecutorMode::kVirtualTime, &oracle_virtual);
  std::vector<std::string> trace_dense =
      RunScript(script, PsExecutorMode::kDenseReference, &oracle_dense);
  EXPECT_EQ(trace_virtual, trace_dense);
  EXPECT_TRUE(oracle_virtual.empty())
      << "virtual-time oracle mismatch: " << oracle_virtual.front();
  EXPECT_TRUE(oracle_dense.empty())
      << "dense oracle mismatch: " << oracle_dense.front();
}

Script RandomScript(Rng* rng) {
  Script script;
  script.nodes = static_cast<int>(rng->NextInt(1, 8));
  int num_tenants = static_cast<int>(rng->NextInt(1, 4));
  for (TenantId t = 1; t <= num_tenants; ++t) {
    script.tenants.push_back({t, 20.0 + 10.0 * rng->NextDouble() * t});
  }

  int num_ops = static_cast<int>(rng->NextInt(1, 40));
  SimTime t = 0;
  for (int i = 0; i < num_ops; ++i) {
    Op op;
    // Dense arrival spacing (including zero gaps, so ops collide with each
    // other and with in-flight completion instants).
    t += rng->NextInt(0, 3000);
    op.time = t;
    double roll = rng->NextDouble();
    if (roll < 0.75) {
      op.kind = OpKind::kSubmit;
      op.tenant = static_cast<TenantId>(rng->NextInt(1, num_tenants));
      // Mix of round and awkward work sizes; non-dyadic shares (k=3,5,...)
      // are what stress the floating-point equivalence.
      double work = rng->NextBool(0.5)
                        ? static_cast<double>(rng->NextInt(1, 10)) * 0.1
                        : 0.01 + rng->NextDouble() * 0.5;
      op.tmpl = MakeTemplate(static_cast<TemplateId>(i + 1), work,
                             rng->NextBool(0.3) ? 0.1 : 0.0);
    } else if (roll < 0.9) {
      op.kind = OpKind::kFail;
    } else {
      op.kind = OpKind::kRepair;
    }
    script.ops.push_back(op);
  }
  return script;
}

TEST(VirtualTimeEquivalenceTest, RandomizedInterleavings) {
  constexpr uint64_t kCases = 400;
  for (uint64_t case_id = 0; case_id < kCases; ++case_id) {
    SCOPED_TRACE("case_id=" + std::to_string(case_id) +
                 " (replay: Rng(0x9EAF).Fork(case_id))");
    Rng rng = Rng(0x9EAF).Fork(case_id);
    Script script = RandomScript(&rng);
    ExpectModesEquivalent(script);
    if (::testing::Test::HasFailure()) break;  // first failing case replays
  }
}

TEST(VirtualTimeEquivalenceTest, SimultaneousCompletions) {
  // Eight identical queries admitted at once finish on one completion event;
  // both modes must emit them in admission order at the same tick.
  Script script;
  script.nodes = 4;
  script.tenants = {{1, 100.0}, {2, 100.0}};
  for (int i = 0; i < 8; ++i) {
    Op op;
    op.time = 0;
    op.tenant = (i % 2) + 1;
    op.tmpl = MakeTemplate(1, 1.0);  // 100 GB / 4 nodes -> 25 s dedicated
    script.ops.push_back(op);
  }
  ExpectModesEquivalent(script);
}

TEST(VirtualTimeEquivalenceTest, SpeedFactorChangeMidFlight) {
  // Failure then repair while queries are in flight: the virtual clock rate
  // changes twice; tags never change.
  Script script;
  script.nodes = 4;
  script.tenants = {{1, 100.0}};
  Op a;
  a.time = 0;
  a.tmpl = MakeTemplate(1, 1.0);
  Op b = a;
  b.time = 5'000;
  b.tmpl = MakeTemplate(2, 0.37);
  Op fail;
  fail.time = 10'000;
  fail.kind = OpKind::kFail;
  Op fail2 = fail;
  fail2.time = 12'000;
  Op repair;
  repair.time = 30'000;
  repair.kind = OpKind::kRepair;
  script.ops = {a, b, fail, fail2, repair};
  ExpectModesEquivalent(script);
}

TEST(VirtualTimeEquivalenceTest, SubmitAtCompletionInstant) {
  // 100 GB / 4 nodes at 1.0 s/GB completes at exactly t=25s; a submission
  // scheduled for the same tick lands while the completion event is queued.
  Script script;
  script.nodes = 4;
  script.tenants = {{1, 100.0}, {2, 100.0}};
  Op a;
  a.time = 0;
  a.tenant = 1;
  a.tmpl = MakeTemplate(1, 1.0);
  Op b;
  b.time = 25 * kSecond;
  b.tenant = 2;
  b.tmpl = MakeTemplate(2, 0.5);
  Op c = b;  // two submissions on the completion tick
  c.tenant = 1;
  c.tmpl = MakeTemplate(3, 0.25);
  script.ops = {a, b, c};
  ExpectModesEquivalent(script);
}

TEST(VirtualTimeEquivalenceTest, EpsilonResidueFromNonDyadicShares) {
  // Three-way sharing on a degraded 3-node instance: shares of 1/3 and 2/9
  // leave sub-epsilon floating-point residue at the ceil'd completion tick.
  // Both modes must classify the residue identically.
  Script script;
  script.nodes = 3;
  script.tenants = {{1, 90.0}, {2, 90.0}, {3, 90.0}};
  Op fail;
  fail.time = 0;
  fail.kind = OpKind::kFail;
  script.ops.push_back(fail);
  for (int i = 0; i < 3; ++i) {
    Op op;
    op.time = 1000 * i;
    op.tenant = i + 1;
    op.tmpl = MakeTemplate(i + 1, 0.1 + 0.07 * i);
    script.ops.push_back(op);
  }
  ExpectModesEquivalent(script);
}

TEST(VirtualTimeEquivalenceTest, MaxConcurrencyMatchesWritebackSemantics) {
  // Satellite check for the removed O(k) write-back: staggered arrivals and
  // departures with hand-computed high-water marks, asserted in both modes.
  for (PsExecutorMode mode :
       {PsExecutorMode::kVirtualTime, PsExecutorMode::kDenseReference}) {
    SCOPED_TRACE(PsExecutorModeToString(mode));
    SimEngine engine;
    MppdbInstance instance(0, 4, &engine, InstanceState::kOnline, mode);
    instance.AddTenant(1, 100.0);
    std::vector<QueryCompletion> done;
    instance.set_completion_callback(
        [&](const QueryCompletion& c) { done.push_back(c); });

    auto submit = [&](QueryId qid, double work) {
      QuerySubmission s;
      s.query_id = qid;
      s.tenant_id = 1;
      QueryTemplate t = MakeTemplate(1, work);
      ASSERT_TRUE(instance.Submit(s, t).ok());
    };
    // q1 alone (k=1), then q2 joins (k=2), q3 joins (k=3); q3 is short and
    // leaves; then q4 joins after the peak (k back to 3).
    engine.ScheduleAt(0, [&](SimTime) { submit(1, 4.0); });          // 100s
    engine.ScheduleAt(10'000, [&](SimTime) { submit(2, 4.0); });
    engine.ScheduleAt(20'000, [&](SimTime) { submit(3, 0.1); });     // 2.5s
    engine.ScheduleAt(40'000, [&](SimTime) { submit(4, 0.1); });
    engine.Run();

    ASSERT_EQ(done.size(), 4u);
    std::unordered_map<QueryId, int> maxk;
    for (const auto& c : done) maxk[c.query_id] = c.max_concurrency;
    EXPECT_EQ(maxk[1], 3);  // saw the k=3 peak while q3 was in flight
    EXPECT_EQ(maxk[2], 3);
    EXPECT_EQ(maxk[3], 3);
    EXPECT_EQ(maxk[4], 3);  // admitted into k=3 (q1, q2 still running)
  }
}

TEST(VirtualTimeEquivalenceTest, CostGaugeSeparatesModes) {
  // High concurrency on one instance: the dense sweep touches O(k) records
  // per event, the heap O(log k). The gauge must reflect that gap — it is
  // the measurement the fig1_1 bench gates on.
  auto run = [](PsExecutorMode mode) {
    SimEngine engine;
    SimCostGauge gauge;
    engine.set_cost_gauge(&gauge);
    MppdbInstance instance(0, 4, &engine, InstanceState::kOnline, mode);
    instance.AddTenant(1, 100.0);
    for (int i = 0; i < 128; ++i) {
      engine.ScheduleAt(10 * i, [&, i](SimTime) {
        QuerySubmission s;
        s.query_id = i;
        s.tenant_id = 1;
        QueryTemplate t = MakeTemplate(1, 0.5 + 0.01 * (i % 7));
        ASSERT_TRUE(instance.Submit(s, t).ok());
      });
    }
    engine.Run();
    EXPECT_EQ(instance.completed_queries(), 128u);
    EXPECT_EQ(gauge.peak_running_set(), 128u);
    return gauge.TouchedPerEvent();
  };
  double dense = run(PsExecutorMode::kDenseReference);
  double virt = run(PsExecutorMode::kVirtualTime);
  EXPECT_GT(dense, 4.0 * virt)
      << "dense=" << dense << " virtual=" << virt;
}

}  // namespace
}  // namespace thrifty
