// Property tests for the processor-sharing executor and Algorithm-1
// routing: invariants that must hold for any workload, swept over node
// counts and random schedules.

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/thrifty.h"

namespace thrifty {
namespace {

QueryTemplate MakeTemplate(double work, double serial = 0.0) {
  QueryTemplate t;
  t.id = 0;
  t.work_seconds_per_gb = work;
  t.serial_fraction = serial;
  return t;
}

class PsNodesSweep : public ::testing::TestWithParam<int> {};

// Work conservation: k equal queries submitted together all finish at
// exactly k x dedicated latency, for any node count.
TEST_P(PsNodesSweep, WorkConservationUnderSimultaneousLoad) {
  int nodes = GetParam();
  for (int k : {1, 2, 3, 7}) {
    SimEngine engine;
    MppdbInstance instance(0, nodes, &engine);
    instance.AddTenant(0, 100);
    QueryTemplate tmpl = MakeTemplate(1.0);
    SimDuration dedicated = tmpl.DedicatedLatency(100, nodes);
    std::vector<SimTime> finishes;
    instance.set_completion_callback([&](const QueryCompletion& c) {
      finishes.push_back(c.finish_time);
    });
    for (int q = 0; q < k; ++q) {
      QuerySubmission s;
      s.query_id = q;
      s.tenant_id = 0;
      ASSERT_TRUE(instance.Submit(s, tmpl).ok());
    }
    engine.Run();
    ASSERT_EQ(finishes.size(), static_cast<size_t>(k));
    for (SimTime f : finishes) {
      EXPECT_NEAR(static_cast<double>(f),
                  static_cast<double>(k) * static_cast<double>(dedicated),
                  2.0 * k)
          << "nodes " << nodes << " k " << k;
    }
  }
}

// Monotonicity: adding load never makes any existing query finish earlier.
TEST_P(PsNodesSweep, AddedLoadNeverSpeedsAnyoneUp) {
  int nodes = GetParam();
  Rng rng(static_cast<uint64_t>(nodes) * 101 + 7);
  for (int trial = 0; trial < 5; ++trial) {
    // Baseline schedule of 6 queries at random times/works, then the same
    // schedule plus 3 extra queries.
    struct Arrival {
      SimTime at;
      double work;
    };
    std::vector<Arrival> base;
    for (int q = 0; q < 6; ++q) {
      base.push_back({rng.NextInt(0, 100) * kSecond,
                      0.5 + rng.NextDouble() * 2.0});
    }
    auto run = [&](bool extra) {
      SimEngine engine;
      MppdbInstance instance(0, nodes, &engine);
      instance.AddTenant(0, 100);
      std::vector<SimTime> finishes(base.size(), 0);
      instance.set_completion_callback([&](const QueryCompletion& c) {
        if (c.query_id < static_cast<QueryId>(base.size())) {
          finishes[static_cast<size_t>(c.query_id)] = c.finish_time;
        }
      });
      for (size_t q = 0; q < base.size(); ++q) {
        engine.ScheduleAt(base[q].at, [&, q](SimTime) {
          QuerySubmission s;
          s.query_id = static_cast<QueryId>(q);
          s.tenant_id = 0;
          QueryTemplate tmpl = MakeTemplate(base[q].work);
          ASSERT_TRUE(instance.Submit(s, tmpl).ok());
        });
      }
      if (extra) {
        for (int e = 0; e < 3; ++e) {
          SimTime at = rng.NextInt(0, 100) * kSecond;  // consumed either way
          engine.ScheduleAt(at, [&, e](SimTime) {
            QuerySubmission s;
            s.query_id = 100 + e;
            s.tenant_id = 0;
            QueryTemplate tmpl = MakeTemplate(1.0);
            ASSERT_TRUE(instance.Submit(s, tmpl).ok());
          });
        }
      }
      engine.Run();
      return finishes;
    };
    // Fork the rng so both runs consume identical randomness for `base`.
    Rng saved = rng;
    auto baseline = run(false);
    rng = saved;
    auto loaded = run(true);
    for (size_t q = 0; q < base.size(); ++q) {
      EXPECT_GE(loaded[q], baseline[q]) << "trial " << trial << " q " << q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Nodes, PsNodesSweep,
                         ::testing::Values(1, 2, 4, 8, 32));

// Routing property: a query is only ever routed for concurrent processing
// (overflow) when every MPPDB of the group is genuinely busy.
TEST(RoutingPropertyTest, OverflowOnlyWhenAllBusy) {
  Rng rng(404);
  for (int trial = 0; trial < 10; ++trial) {
    SimEngine engine;
    std::vector<std::unique_ptr<MppdbInstance>> instances;
    std::vector<MppdbInstance*> raw;
    for (InstanceId id = 0; id < 3; ++id) {
      instances.push_back(std::make_unique<MppdbInstance>(id, 4, &engine));
      for (TenantId t = 0; t < 8; ++t) instances.back()->AddTenant(t, 100);
      raw.push_back(instances.back().get());
    }
    GroupRouter router(0, raw);
    QueryId next_id = 0;
    for (int step = 0; step < 120; ++step) {
      engine.RunUntil(engine.now() + rng.NextInt(1, 30) * kSecond);
      TenantId tenant = static_cast<TenantId>(rng.NextBounded(8));
      bool all_busy = true;
      bool serving_tenant = false;
      for (MppdbInstance* m : raw) {
        all_busy &= !m->IsFree();
        serving_tenant |= m->IsServingTenant(tenant);
      }
      auto decision = router.Route(tenant);
      ASSERT_TRUE(decision.ok());
      if (decision->kind == RouteKind::kOverflow) {
        EXPECT_TRUE(all_busy) << "overflow with a free MPPDB available";
      }
      if (serving_tenant) {
        EXPECT_EQ(decision->kind, RouteKind::kTenantAffinity);
        EXPECT_TRUE(decision->instance->IsServingTenant(tenant));
      }
      QuerySubmission s;
      s.query_id = next_id++;
      s.tenant_id = tenant;
      QueryTemplate tmpl = MakeTemplate(0.2 + rng.NextDouble());
      ASSERT_TRUE(decision->instance->Submit(s, tmpl).ok());
    }
    engine.Run();
  }
}

// Exclusive service: while at most one query runs per instance-sized
// tenant, measured latency equals the dedicated latency exactly, even for
// non-linear templates.
TEST(RoutingPropertyTest, ExclusiveServiceIsExactForAnyTemplate) {
  QueryCatalog catalog = QueryCatalog::Default();
  SimEngine engine;
  MppdbInstance instance(0, 8, &engine);
  instance.AddTenant(0, 800);
  std::vector<std::pair<QueryId, SimDuration>> expected;
  std::vector<std::pair<QueryId, SimDuration>> measured;
  instance.set_completion_callback([&](const QueryCompletion& c) {
    measured.push_back({c.query_id, c.MeasuredLatency()});
  });
  QueryId next = 0;
  for (const auto& tmpl : catalog.templates()) {
    QuerySubmission s;
    s.query_id = next++;
    s.tenant_id = 0;
    ASSERT_TRUE(instance.Submit(s, tmpl).ok());
    expected.push_back({s.query_id, tmpl.DedicatedLatency(800, 8)});
    engine.Run();  // strictly sequential
  }
  ASSERT_EQ(measured.size(), expected.size());
  for (size_t i = 0; i < measured.size(); ++i) {
    EXPECT_EQ(measured[i], expected[i]);
  }
}

}  // namespace
}  // namespace thrifty
