// Randomized property harness for warm-start group repair: re-solving a
// problem from a seed grouping that the (tightened or reshaped) instance
// no longer admits must evict members rather than dissolve groups, keep
// every output group SLA-feasible, account kept/repaired/dissolved groups
// exactly, and produce byte-identical groupings at solver_jobs 1, 2, and
// 4. Every randomized case derives its generator from an id-keyed Rng
// fork, so a failure names the case id and replays deterministically.

#include "placement/two_step.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace thrifty {
namespace {

struct Instance {
  std::vector<TenantSpec> tenants;
  std::vector<ActivityVector> activities;
};

/// A random multi-size-class instance keyed by `case_id`.
Instance MakeInstance(uint64_t case_id, size_t num_tenants) {
  Rng rng = Rng(0xbee5).Fork(case_id);
  Instance instance;
  const size_t num_epochs = 400;
  const int sizes[] = {2, 4};
  for (TenantId id = 0; id < static_cast<TenantId>(num_tenants); ++id) {
    DynamicBitmap bits(num_epochs);
    int runs = static_cast<int>(rng.NextInt(1, 4));
    for (int run = 0; run < runs; ++run) {
      size_t begin = rng.NextBounded(num_epochs);
      bits.SetRange(begin, begin + 15 + rng.NextBounded(60));
    }
    instance.activities.push_back(ActivityVector::FromBitmap(id, bits));
    TenantSpec spec;
    spec.id = id;
    spec.requested_nodes = sizes[rng.NextBounded(2)];
    spec.data_gb = 100.0 * spec.requested_nodes;
    instance.tenants.push_back(spec);
  }
  return instance;
}

/// Solves `problem` warm-started from `seed` at the given solver_jobs.
GroupingSolution SolveWarm(const PackingProblem& problem,
                           const GroupingSolution& seed, int solver_jobs,
                           bool warm_repair = true) {
  TwoStepOptions options;
  options.warm_start = &seed;
  options.solver_jobs = solver_jobs;
  options.warm_repair = warm_repair;
  auto solution = SolveTwoStep(problem, options);
  EXPECT_TRUE(solution.ok());
  return *solution;
}

/// The membership lists of a solution, for byte-identity comparison.
std::vector<std::vector<TenantId>> Memberships(
    const GroupingSolution& solution) {
  std::vector<std::vector<TenantId>> groups;
  for (const auto& group : solution.groups) {
    groups.push_back(group.tenant_ids);
  }
  return groups;
}

TEST(WarmRepairPropertyTest, RepairedSolvesAreFeasibleAndDeterministic) {
  size_t total_repaired = 0;
  for (uint64_t case_id = 0; case_id < 8; ++case_id) {
    SCOPED_TRACE("case_id=" + std::to_string(case_id));
    Instance instance = MakeInstance(case_id, 28);

    // Cold-solve at a loose SLA, then warm-start the tighter re-solve
    // from that grouping: loose groups routinely break the tighter P, so
    // repair has real work to do.
    auto loose = MakePackingProblem(instance.tenants, instance.activities,
                                    3, 0.95);
    ASSERT_TRUE(loose.ok());
    auto seed = SolveTwoStep(*loose);
    ASSERT_TRUE(seed.ok());

    auto tight = MakePackingProblem(instance.tenants, instance.activities,
                                    3, 0.999);
    ASSERT_TRUE(tight.ok());
    GroupingSolution repaired = SolveWarm(*tight, *seed, 1);

    // Every output group meets the tightened SLA and covers every tenant.
    EXPECT_TRUE(VerifySolution(*tight, repaired).ok());

    // Repair accounting: every seed group is either kept or repaired
    // (never dissolved), and evictions happen only in repaired groups.
    EXPECT_EQ(repaired.warm_groups_kept + repaired.warm_groups_repaired,
              seed->groups.size());
    EXPECT_EQ(repaired.warm_groups_dissolved, 0u);
    if (repaired.warm_groups_repaired > 0) {
      EXPECT_GT(repaired.warm_members_evicted, 0u);
    } else {
      EXPECT_EQ(repaired.warm_members_evicted, 0u);
    }

    // Byte-identical memberships at solver_jobs 2 and 4.
    EXPECT_EQ(Memberships(SolveWarm(*tight, *seed, 2)),
              Memberships(repaired));
    EXPECT_EQ(Memberships(SolveWarm(*tight, *seed, 4)),
              Memberships(repaired));

    // Legacy mode: with repair disabled the same seeds dissolve whole —
    // exactly the groups repair would have repaired — and nothing is
    // evicted.
    GroupingSolution dissolved = SolveWarm(*tight, *seed, 1, false);
    EXPECT_TRUE(VerifySolution(*tight, dissolved).ok());
    EXPECT_EQ(dissolved.warm_groups_dissolved,
              repaired.warm_groups_repaired);
    EXPECT_EQ(dissolved.warm_groups_kept, repaired.warm_groups_kept);
    EXPECT_EQ(dissolved.warm_groups_repaired, 0u);
    EXPECT_EQ(dissolved.warm_members_evicted, 0u);
    total_repaired += repaired.warm_groups_repaired;
  }
  // The SLA tightening must give repair real work somewhere in the case
  // set, or this test silently degrades to a kept-groups-only check.
  EXPECT_GT(total_repaired, 0u);
}

TEST(WarmRepairTest, HotTenantIsEvictedOthersStayGrouped) {
  // Five quiet tenants active in one shared epoch window, plus one hot
  // tenant active everywhere. Seeded together at R=1 the group's TTP is
  // far below P; repair must evict members until feasible, and the hot
  // tenant — the largest marginal TTP contributor — must go first (and
  // suffice).
  const size_t num_epochs = 300;
  std::vector<TenantSpec> tenants;
  std::vector<ActivityVector> activities;
  for (TenantId id = 0; id < 6; ++id) {
    DynamicBitmap bits(num_epochs);
    if (id == 5) {
      bits.SetRange(0, num_epochs);  // the hot tenant
    } else {
      bits.SetRange(10 * static_cast<size_t>(id),
                    10 * static_cast<size_t>(id) + 5);
    }
    activities.push_back(ActivityVector::FromBitmap(id, bits));
    TenantSpec spec;
    spec.id = id;
    spec.requested_nodes = 4;
    spec.data_gb = 400;
    tenants.push_back(spec);
  }
  auto problem = MakePackingProblem(tenants, activities, 1, 0.95);
  ASSERT_TRUE(problem.ok());

  GroupingSolution seed;
  TenantGroupResult all;
  all.max_nodes = 4;
  for (TenantId id = 0; id < 6; ++id) all.tenant_ids.push_back(id);
  seed.groups.push_back(all);

  GroupingSolution solution = SolveWarm(*problem, seed, 1);
  EXPECT_TRUE(VerifySolution(*problem, solution).ok());
  EXPECT_EQ(solution.warm_groups_repaired, 1u);
  EXPECT_EQ(solution.warm_members_evicted, 1u);

  // The repaired group holds the five quiet tenants; the hot tenant ends
  // up alone in a fresh group.
  ASSERT_EQ(solution.groups.size(), 2u);
  EXPECT_EQ(solution.groups[0].tenant_ids.size(), 5u);
  for (TenantId id = 0; id < 5; ++id) {
    EXPECT_EQ(solution.groups[0].tenant_ids[static_cast<size_t>(id)], id);
  }
  ASSERT_EQ(solution.groups[1].tenant_ids.size(), 1u);
  EXPECT_EQ(solution.groups[1].tenant_ids[0], 5);
}

TEST(WarmRepairTest, MissingSeedMembersAreCountedNotRepaired) {
  // A seed that references tenants absent from the problem (de-registered
  // since the seed plan was made): the absent ids are filtered and counted
  // in warm_members_missing, and the surviving members still seed their
  // group.
  Instance instance = MakeInstance(77, 12);
  auto problem = MakePackingProblem(instance.tenants, instance.activities,
                                    3, 0.95);
  ASSERT_TRUE(problem.ok());
  auto cold = SolveTwoStep(*problem);
  ASSERT_TRUE(cold.ok());

  GroupingSolution stale = *cold;
  stale.groups[0].tenant_ids.push_back(900);  // never registered
  stale.groups[0].tenant_ids.push_back(901);

  GroupingSolution solution = SolveWarm(*problem, stale, 1);
  EXPECT_TRUE(VerifySolution(*problem, solution).ok());
  EXPECT_EQ(solution.warm_members_missing, 2u);
  EXPECT_EQ(solution.warm_groups_kept + solution.warm_groups_repaired,
            cold->groups.size());
}

TEST(WarmRepairTest, EmptyWarmStartShortCircuitsToCold) {
  // A warm start carrying zero seed groups must behave exactly like a
  // cold solve (the seed pass is skipped entirely).
  Instance instance = MakeInstance(3, 20);
  auto problem = MakePackingProblem(instance.tenants, instance.activities,
                                    3, 0.999);
  ASSERT_TRUE(problem.ok());
  auto cold = SolveTwoStep(*problem);
  ASSERT_TRUE(cold.ok());

  GroupingSolution empty_seed;
  GroupingSolution warm = SolveWarm(*problem, empty_seed, 1);
  EXPECT_EQ(Memberships(warm), Memberships(*cold));
  EXPECT_EQ(warm.warm_groups_kept, 0u);
  EXPECT_EQ(warm.warm_groups_repaired, 0u);
  EXPECT_EQ(warm.warm_members_missing, 0u);
}

}  // namespace
}  // namespace thrifty
