// Determinism of the threaded solver core: SolveTwoStep and SolveExact must
// return byte-identical solutions for every solver_jobs value. Parallelism
// may change evaluation *order* (shard merges, subtree completion), never
// the argmin/incumbent the canonical tie-breaks select.

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fig51_fixture.h"
#include "placement/exact.h"
#include "placement/two_step.h"

namespace thrifty {
namespace {

using testing_fixtures::Fig51Activities;

struct Instance {
  std::vector<ActivityVector> activities;
  std::vector<TenantSpec> tenants;
};

Instance RandomInstance(uint64_t seed, int num_tenants, size_t num_epochs,
                        const std::vector<int>& sizes) {
  Rng rng(seed);
  Instance inst;
  for (TenantId id = 1; id <= num_tenants; ++id) {
    DynamicBitmap bits(num_epochs);
    int runs = static_cast<int>(rng.NextInt(0, 3));  // some all-zero tenants
    for (int run = 0; run < runs; ++run) {
      size_t begin = rng.NextBounded(num_epochs);
      bits.SetRange(begin, begin + 10 + rng.NextBounded(num_epochs / 4));
    }
    inst.activities.push_back(ActivityVector::FromBitmap(id, bits));
    TenantSpec spec;
    spec.id = id;
    spec.requested_nodes = sizes[rng.NextBounded(sizes.size())];
    inst.tenants.push_back(spec);
  }
  return inst;
}

void ExpectSameSolution(const GroupingSolution& base,
                        const GroupingSolution& other,
                        const std::string& context) {
  ASSERT_EQ(base.groups.size(), other.groups.size()) << context;
  for (size_t g = 0; g < base.groups.size(); ++g) {
    EXPECT_EQ(base.groups[g].tenant_ids, other.groups[g].tenant_ids)
        << context << " group " << g;
    EXPECT_EQ(base.groups[g].max_nodes, other.groups[g].max_nodes)
        << context << " group " << g;
    EXPECT_EQ(base.groups[g].ttp, other.groups[g].ttp)
        << context << " group " << g;
    EXPECT_EQ(base.groups[g].max_active, other.groups[g].max_active)
        << context << " group " << g;
  }
}

TEST(SolverParallelTest, TwoStepFig53WalkthroughAtEveryJobCount) {
  auto activities = Fig51Activities();
  std::vector<TenantSpec> tenants(6);
  for (size_t i = 0; i < 6; ++i) {
    tenants[i].id = static_cast<TenantId>(i + 1);
    tenants[i].requested_nodes = 4;
  }
  auto problem = MakePackingProblem(tenants, activities, 3, 0.999);
  ASSERT_TRUE(problem.ok());
  for (int jobs : {1, 2, 4}) {
    TwoStepOptions options;
    options.solver_jobs = jobs;
    auto solution = SolveTwoStep(*problem, options);
    ASSERT_TRUE(solution.ok()) << "jobs=" << jobs;
    ASSERT_EQ(solution->groups.size(), 2u) << "jobs=" << jobs;
    EXPECT_EQ(solution->groups[0].tenant_ids,
              (std::vector<TenantId>{3, 2, 5, 4, 6}))
        << "jobs=" << jobs;
    EXPECT_EQ(solution->groups[1].tenant_ids, (std::vector<TenantId>{1}))
        << "jobs=" << jobs;
  }
}

TEST(SolverParallelTest, TwoStepIdenticalAcrossSolverJobs) {
  const std::vector<int> sizes = {2, 4, 8};
  for (uint64_t seed : {11ull, 22ull, 33ull}) {
    Instance inst = RandomInstance(seed, 60, 400, sizes);
    for (auto [r, p] : {std::pair<int, double>{3, 0.999},
                        std::pair<int, double>{2, 0.95}}) {
      auto problem = MakePackingProblem(inst.tenants, inst.activities, r, p);
      ASSERT_TRUE(problem.ok());
      TwoStepOptions serial;
      auto base = SolveTwoStep(*problem, serial);
      ASSERT_TRUE(base.ok());
      ASSERT_TRUE(VerifySolution(*problem, *base).ok());
      for (int jobs : {2, 4}) {
        TwoStepOptions options;
        options.solver_jobs = jobs;
        auto solution = SolveTwoStep(*problem, options);
        ASSERT_TRUE(solution.ok());
        ExpectSameSolution(*base, *solution,
                           "seed " + std::to_string(seed) + " R=" +
                               std::to_string(r) + " jobs=" +
                               std::to_string(jobs));
      }
    }
  }
}

TEST(SolverParallelTest, SolverJobsBelowOneClampsToSerial) {
  // Documented contract: solver_jobs < 1 is the serial path, not an error,
  // so option wrappers (HierarchicalOptions, sweep configs) can pass a
  // derived value through unchecked.
  Instance inst = RandomInstance(44, 40, 300, {2, 4});
  auto problem = MakePackingProblem(inst.tenants, inst.activities, 3, 0.999);
  ASSERT_TRUE(problem.ok());
  TwoStepOptions serial;
  auto base = SolveTwoStep(*problem, serial);
  ASSERT_TRUE(base.ok());
  for (int jobs : {0, -1, -7}) {
    TwoStepOptions options;
    options.solver_jobs = jobs;
    auto solution = SolveTwoStep(*problem, options);
    ASSERT_TRUE(solution.ok()) << "jobs=" << jobs;
    ExpectSameSolution(*base, *solution,
                       "two_step clamped jobs=" + std::to_string(jobs));
  }

  Instance small = RandomInstance(45, 8, 120, {2, 4});
  auto exact_problem =
      MakePackingProblem(small.tenants, small.activities, 2, 0.95);
  ASSERT_TRUE(exact_problem.ok());
  ExactSolverOptions exact_serial;
  auto exact_base = SolveExact(*exact_problem, exact_serial);
  ASSERT_TRUE(exact_base.ok()) << exact_base.status();
  for (int jobs : {0, -3}) {
    ExactSolverOptions options;
    options.solver_jobs = jobs;
    auto solution = SolveExact(*exact_problem, options);
    ASSERT_TRUE(solution.ok()) << "jobs=" << jobs;
    ExpectSameSolution(*exact_base, *solution,
                       "exact clamped jobs=" + std::to_string(jobs));
  }
}

TEST(SolverParallelTest, ExactIdenticalAcrossSolverJobs) {
  const std::vector<int> sizes = {2, 4};
  for (uint64_t seed : {5ull, 17ull, 29ull}) {
    Instance inst = RandomInstance(seed, 9, 120, sizes);
    auto problem = MakePackingProblem(inst.tenants, inst.activities, 2, 0.95);
    ASSERT_TRUE(problem.ok());
    ExactSolverOptions serial;
    auto base = SolveExact(*problem, serial);
    ASSERT_TRUE(base.ok()) << base.status();
    ASSERT_TRUE(VerifySolution(*problem, *base).ok());
    for (int jobs : {2, 4}) {
      ExactSolverOptions options;
      options.solver_jobs = jobs;
      auto solution = SolveExact(*problem, options);
      ASSERT_TRUE(solution.ok()) << solution.status();
      ExpectSameSolution(*base, *solution,
                         "seed " + std::to_string(seed) + " jobs=" +
                             std::to_string(jobs));
    }
  }
}

TEST(SolverParallelTest, ExactParallelCostMatchesSerialOptimum) {
  // Beyond structural identity: the parallel searches must report the same
  // optimal node count (the quantity B&B proves optimal).
  const std::vector<int> sizes = {2, 4, 8};
  Instance inst = RandomInstance(77, 10, 200, sizes);
  auto problem = MakePackingProblem(inst.tenants, inst.activities, 3, 0.9);
  ASSERT_TRUE(problem.ok());
  ExactSolverOptions serial;
  auto base = SolveExact(*problem, serial);
  ASSERT_TRUE(base.ok()) << base.status();
  for (int jobs : {2, 4, 8}) {
    ExactSolverOptions options;
    options.solver_jobs = jobs;
    auto solution = SolveExact(*problem, options);
    ASSERT_TRUE(solution.ok()) << solution.status();
    EXPECT_EQ(solution->NodesUsed(3), base->NodesUsed(3)) << "jobs=" << jobs;
  }
}

}  // namespace
}  // namespace thrifty
