#include "core/deployment_master.h"

#include <gtest/gtest.h>

#include "core/thrifty.h"

namespace thrifty {
namespace {

DeploymentPlan SmallPlan() {
  DeploymentPlan plan;
  plan.replication_factor = 2;
  plan.sla_fraction = 0.999;
  GroupDeployment group;
  group.group_id = 0;
  for (TenantId id = 0; id < 3; ++id) {
    TenantSpec spec;
    spec.id = id;
    spec.requested_nodes = 4;
    spec.data_gb = 400;
    group.tenants.push_back(spec);
  }
  group.cluster.mppdb_nodes = {6, 4};  // tuned MPPDB_0 with U = 6
  plan.groups.push_back(group);
  return plan;
}

TEST(DeploymentMasterTest, StartsInstancesPerClusterDesign) {
  SimEngine engine;
  Cluster cluster(10, &engine);
  QueryRouter router;
  DeploymentMaster master(&cluster, &router);
  auto deployed = master.Deploy(SmallPlan());
  ASSERT_TRUE(deployed.ok()) << deployed.status();
  ASSERT_EQ(deployed->size(), 1u);
  ASSERT_EQ((*deployed)[0].instances.size(), 2u);
  EXPECT_EQ((*deployed)[0].instances[0]->nodes(), 6);  // tuning MPPDB first
  EXPECT_EQ((*deployed)[0].instances[1]->nodes(), 4);
  EXPECT_EQ(cluster.nodes_in_use(), 10);
}

TEST(DeploymentMasterTest, PlacesEveryTenantOnEveryGroupMppdb) {
  SimEngine engine;
  Cluster cluster(10, &engine);
  QueryRouter router;
  DeploymentMaster master(&cluster, &router);
  auto deployed = master.Deploy(SmallPlan());
  ASSERT_TRUE(deployed.ok());
  for (MppdbInstance* instance : (*deployed)[0].instances) {
    for (TenantId id = 0; id < 3; ++id) {
      EXPECT_TRUE(instance->HostsTenant(id));
      EXPECT_DOUBLE_EQ(instance->TenantDataGb(id), 400);
    }
  }
}

TEST(DeploymentMasterTest, RegistersRouting) {
  SimEngine engine;
  Cluster cluster(10, &engine);
  QueryRouter router;
  DeploymentMaster master(&cluster, &router);
  ASSERT_TRUE(master.Deploy(SmallPlan()).ok());
  auto decision = router.Route(1);
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision->kind, RouteKind::kTuningFree);
  EXPECT_EQ(decision->instance->nodes(), 6);
}

TEST(DeploymentMasterTest, FailsWhenPoolTooSmall) {
  SimEngine engine;
  Cluster cluster(8, &engine);  // plan needs 10
  QueryRouter router;
  DeploymentMaster master(&cluster, &router);
  EXPECT_EQ(master.Deploy(SmallPlan()).status().code(),
            StatusCode::kCapacityExceeded);
}

}  // namespace
}  // namespace thrifty
