// Edge cases across module boundaries: empty inputs, zero-size data, and
// degenerate configurations that a service operator can plausibly hit.

#include <gtest/gtest.h>

#include "core/thrifty.h"

namespace thrifty {
namespace {

TEST(EdgeCaseTest, EmptyPackingProblemYieldsEmptySolutions) {
  PackingProblem problem;
  problem.num_epochs = 100;
  auto two_step = SolveTwoStep(problem);
  ASSERT_TRUE(two_step.ok());
  EXPECT_TRUE(two_step->groups.empty());
  EXPECT_EQ(two_step->NodesUsed(3), 0);
  auto ffd = SolveFfd(problem);
  ASSERT_TRUE(ffd.ok());
  EXPECT_TRUE(ffd->groups.empty());
  auto exact = SolveExact(problem);
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(exact->groups.empty());
  EXPECT_TRUE(VerifySolution(problem, *two_step).ok());
}

TEST(EdgeCaseTest, SingleTenantProblem) {
  DynamicBitmap bits(50);
  bits.SetRange(0, 50);  // always active — still fine at R >= 1
  std::vector<ActivityVector> activities;
  activities.push_back(ActivityVector::FromBitmap(0, bits));
  std::vector<TenantSpec> tenants(1);
  tenants[0].id = 0;
  tenants[0].requested_nodes = 16;
  auto problem = MakePackingProblem(tenants, activities, 3, 0.999);
  ASSERT_TRUE(problem.ok());
  auto solution = SolveTwoStep(*problem);
  ASSERT_TRUE(solution.ok());
  ASSERT_EQ(solution->groups.size(), 1u);
  EXPECT_EQ(solution->NodesUsed(3), 48);
  // Consolidation cannot save anything: 48 used vs 16 requested.
  EXPECT_LT(solution->ConsolidationEffectiveness(3, 16), 0);
}

TEST(EdgeCaseTest, AsyncInstanceWithNoDataSkipsLoading) {
  SimEngine engine;
  Cluster cluster(4, &engine);
  SimTime ready_at = -1;
  auto result = cluster.CreateInstanceAsync(
      4, {}, [&](MppdbInstance*) { ready_at = engine.now(); });
  ASSERT_TRUE(result.ok());
  engine.Run();
  EXPECT_EQ(ready_at, cluster.provisioning().NodeStartTime(4));
}

TEST(EdgeCaseTest, SessionWithZeroArrivalWindow) {
  QueryCatalog catalog = QueryCatalog::Default();
  SessionOptions options;
  options.arrival_window = 0;  // all users start at t = 0 exactly
  SessionSimulator simulator(&catalog, options);
  Rng rng(3);
  TenantLog log = simulator.Run(2, 200, QuerySuite::kTpch, 3, &rng);
  ASSERT_FALSE(log.entries.empty());
  EXPECT_EQ(log.entries.front().submit_time, 0);
}

TEST(EdgeCaseTest, ReplaySkipsEntriesBeforeNow) {
  QueryCatalog catalog = QueryCatalog::Default();
  SimEngine engine;
  Cluster cluster(8, &engine);
  DeploymentPlan plan;
  plan.replication_factor = 2;
  plan.sla_fraction = 0.999;
  GroupDeployment group;
  group.group_id = 0;
  TenantSpec spec;
  spec.id = 0;
  spec.requested_nodes = 4;
  spec.data_gb = 400;
  group.tenants.push_back(spec);
  group.cluster.mppdb_nodes = {4, 4};
  plan.groups.push_back(group);
  ServiceOptions options;
  options.replication_factor = 2;
  options.elastic_scaling = false;
  ThriftyService service(&engine, &cluster, &catalog, options);
  ASSERT_TRUE(service.Deploy(plan).ok());

  // Advance the clock past the first two entries; only the third replays.
  engine.RunUntil(kHour);
  TenantLog log;
  log.tenant_id = 0;
  log.entries.push_back({10 * kMinute, 0, kSecond, -1});
  log.entries.push_back({20 * kMinute, 0, kSecond, -1});
  log.entries.push_back({90 * kMinute, 0, kSecond, -1});
  ASSERT_TRUE(service.ScheduleLogReplay({log}).ok());
  engine.Run();
  EXPECT_EQ(service.metrics().completed, 1u);
}

TEST(EdgeCaseTest, RouterWithSingleMppdbAlwaysUsesIt) {
  SimEngine engine;
  MppdbInstance only(0, 2, &engine);
  only.AddTenant(0, 100);
  only.AddTenant(1, 100);
  GroupRouter router(0, {&only});
  QueryTemplate tmpl;
  tmpl.id = 0;
  tmpl.work_seconds_per_gb = 1.0;
  for (QueryId q = 0; q < 3; ++q) {
    auto decision = router.Route(static_cast<TenantId>(q % 2));
    ASSERT_TRUE(decision.ok());
    EXPECT_EQ(decision->instance->id(), 0);
    QuerySubmission s;
    s.query_id = q;
    s.tenant_id = static_cast<TenantId>(q % 2);
    ASSERT_TRUE(only.Submit(s, tmpl).ok());
  }
  // First was tuning-free, the rest affinity/overflow on the same box.
  engine.Run();
}

TEST(EdgeCaseTest, HistogramSingleValuePercentiles) {
  Histogram h;
  h.Add(5.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 5.0);
}

TEST(EdgeCaseTest, ZeroCapacityClusterRejectsEverything) {
  SimEngine engine;
  Cluster cluster(0, &engine);
  EXPECT_EQ(cluster.CreateInstanceOnline(1).status().code(),
            StatusCode::kCapacityExceeded);
  EXPECT_EQ(cluster.nodes_hibernated(), 0);
}

}  // namespace
}  // namespace thrifty
