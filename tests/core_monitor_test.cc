#include "core/tenant_activity_monitor.h"

#include <gtest/gtest.h>

namespace thrifty {
namespace {

TEST(CoreMonitorTest, GroupRegistrationAndCounts) {
  TenantActivityMonitor monitor(/*replication_factor=*/2);
  ASSERT_TRUE(monitor.RegisterGroup(0, {1, 2, 3}).ok());
  ASSERT_TRUE(monitor.RegisterGroup(1, {4, 5}).ok());
  EXPECT_EQ(monitor.RegisterGroup(0, {9}).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(monitor.RegisterGroup(2, {1}).code(), StatusCode::kAlreadyExists);

  monitor.OnQueryStart(1, 100);
  monitor.OnQueryStart(2, 150);
  monitor.OnQueryStart(4, 200);
  EXPECT_EQ(*monitor.ActiveTenantsInGroup(0), 2);
  EXPECT_EQ(*monitor.ActiveTenantsInGroup(1), 1);
  ASSERT_TRUE(monitor.OnQueryFinish(1, 300).ok());
  EXPECT_EQ(*monitor.ActiveTenantsInGroup(0), 1);
  EXPECT_FALSE(monitor.ActiveTenantsInGroup(7).ok());
}

TEST(CoreMonitorTest, RtTtpFollowsGroupCounts) {
  TenantActivityMonitor monitor(/*replication_factor=*/1,
                                /*window=*/10 * kHour);
  ASSERT_TRUE(monitor.RegisterGroup(0, {1, 2}).ok());
  auto rt = monitor.GroupMonitor(0);
  ASSERT_TRUE(rt.ok());
  // Both tenants active for one hour -> count 2 > R=1 for 1 of 10 hours.
  monitor.OnQueryStart(1, 0);
  monitor.OnQueryStart(2, 0);
  ASSERT_TRUE(monitor.OnQueryFinish(1, 1 * kHour).ok());
  ASSERT_TRUE(monitor.OnQueryFinish(2, 1 * kHour).ok());
  EXPECT_NEAR((*rt)->RtTtp(10 * kHour), 0.9, 1e-9);
}

TEST(CoreMonitorTest, ExcludedTenantsDropOutOfCounts) {
  TenantActivityMonitor monitor(/*replication_factor=*/1,
                                /*window=*/10 * kHour);
  ASSERT_TRUE(monitor.RegisterGroup(0, {1, 2}).ok());
  monitor.OnQueryStart(1, 0);
  monitor.OnQueryStart(2, 0);
  EXPECT_EQ(*monitor.ActiveTenantsInGroup(0), 2);
  // Excluding an active tenant adjusts the live count immediately.
  ASSERT_TRUE(monitor.ExcludeTenants(0, {2}, 100).ok());
  EXPECT_EQ(*monitor.ActiveTenantsInGroup(0), 1);
  // Later transitions of the excluded tenant are ignored.
  ASSERT_TRUE(monitor.OnQueryFinish(2, 200).ok());
  monitor.OnQueryStart(2, 300);
  EXPECT_EQ(*monitor.ActiveTenantsInGroup(0), 1);
  ASSERT_TRUE(monitor.OnQueryFinish(1, 400).ok());
  EXPECT_EQ(*monitor.ActiveTenantsInGroup(0), 0);
}

TEST(CoreMonitorTest, ExcludeValidation) {
  TenantActivityMonitor monitor(2);
  ASSERT_TRUE(monitor.RegisterGroup(0, {1}).ok());
  EXPECT_EQ(monitor.ExcludeTenants(9, {1}, 0).code(), StatusCode::kNotFound);
  EXPECT_EQ(monitor.ExcludeTenants(0, {5}, 0).code(),
            StatusCode::kInvalidArgument);
}

TEST(CoreMonitorTest, UnregisteredTenantsTrackedButUncounted) {
  TenantActivityMonitor monitor(2);
  ASSERT_TRUE(monitor.RegisterGroup(0, {1}).ok());
  // Tenant 99 belongs to no group (e.g. excluded from consolidation).
  monitor.OnQueryStart(99, 10);
  EXPECT_TRUE(monitor.tracker()->IsActive(99));
  EXPECT_EQ(*monitor.ActiveTenantsInGroup(0), 0);
  ASSERT_TRUE(monitor.OnQueryFinish(99, 20).ok());
}

}  // namespace
}  // namespace thrifty
