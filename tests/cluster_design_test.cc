#include "placement/cluster_design.h"

#include <gtest/gtest.h>

namespace thrifty {
namespace {

TEST(ClusterDesignTest, Fig41ToyExample) {
  // The paper's toy example (§4.1): 10 tenants requesting
  // 6,6,5,5,5,4,4,3,2,2 nodes (N = 42), A = 3 -> three 6-node MPPDBs,
  // 18 nodes total.
  auto design = DesignGroupCluster(/*largest_tenant_nodes=*/6,
                                   /*total_requested_nodes=*/42,
                                   /*num_mppdbs=*/3);
  ASSERT_TRUE(design.ok());
  EXPECT_EQ(design->NumMppdbs(), 3);
  EXPECT_EQ(design->TotalNodes(), 18);
  EXPECT_EQ(design->mppdb_nodes, (std::vector<int>{6, 6, 6}));
  EXPECT_EQ(design->tuning_nodes(), 6);
}

TEST(ClusterDesignTest, DefaultTuningSizeIsLargestTenant) {
  auto design = DesignGroupCluster(4, 20, 2);
  ASSERT_TRUE(design.ok());
  EXPECT_EQ(design->tuning_nodes(), 4);
}

TEST(ClusterDesignTest, CustomTuningSizeWithinBounds) {
  // N = 42, A = 3, n_1 = 6: U may go up to 42 - 2*6 = 30.
  auto design = DesignGroupCluster(6, 42, 3, /*tuning_nodes_u=*/12);
  ASSERT_TRUE(design.ok());
  EXPECT_EQ(design->mppdb_nodes, (std::vector<int>{12, 6, 6}));
  EXPECT_EQ(design->TotalNodes(), 24);
}

TEST(ClusterDesignTest, TuningSizeBelowLargestRejected) {
  auto result = DesignGroupCluster(6, 42, 3, 5);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ClusterDesignTest, TuningSizeAboveUpperBoundRejected) {
  auto result = DesignGroupCluster(6, 42, 3, 31);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(DesignGroupCluster(6, 42, 3, 30).ok());
}

TEST(ClusterDesignTest, SingleTenantGroup) {
  // N == n_1: U = n_1 is the only valid choice.
  auto design = DesignGroupCluster(8, 8, 3);
  ASSERT_TRUE(design.ok());
  EXPECT_EQ(design->TotalNodes(), 24);
  EXPECT_EQ(DesignGroupCluster(8, 8, 3, 9).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ClusterDesignTest, SingleMppdbGroup) {
  auto design = DesignGroupCluster(4, 12, 1);
  ASSERT_TRUE(design.ok());
  EXPECT_EQ(design->NumMppdbs(), 1);
  EXPECT_EQ(design->TotalNodes(), 4);
}

TEST(ClusterDesignTest, RejectsDegenerateInputs) {
  EXPECT_FALSE(DesignGroupCluster(0, 10, 3).ok());
  EXPECT_FALSE(DesignGroupCluster(4, 10, 0).ok());
}

}  // namespace
}  // namespace thrifty
