// Streaming-service soak: bounded smoke soak under ctest (set
// THRIFTY_SOAK_LONG=1 for the long mode), exercising the full loop —
// workload generation, event stream, controller feedback, delta
// re-consolidation, cluster deployment — and gating on feasibility,
// monotone event-log offsets, and live-vs-replay fingerprint identity.

#include <algorithm>
#include <cstdlib>
#include <string>
#include <unordered_set>
#include <vector>

#include "activity/streamed_epochizer.h"
#include "gtest/gtest.h"
#include "placement/problem.h"
#include "soak/soak_harness.h"

namespace thrifty {
namespace {

soak::SoakConfig SmokeConfig() {
  soak::SoakConfig config;
  if (std::getenv("THRIFTY_SOAK_LONG") != nullptr) {
    config.initial_tenants = 400;
    config.cycles = 10;
    config.churn_per_cycle = 8;
    config.drift_per_cycle = 5;
    config.horizon_days = 7;
    config.sessions_per_class = 25;
  }
  return config;
}

/// Rebuilds the packing problem from the soak's final registered state and
/// verifies the final plan against it under the smallest P any cycle
/// solved with. Sound across cycles: every carried-over group was solved
/// under some cycle's P >= min, and activity drift only thins logs, so a
/// group's recomputed TTP can only have improved.
Status VerifyFinalPlan(const soak::SoakOutcome& outcome,
                       const soak::SoakConfig& config) {
  EpochConfig epochs{10 * kSecond, 0,
                     static_cast<SimTime>(config.horizon_days) * kDay};
  std::vector<ActivityVector> vectors;
  vectors.reserve(outcome.final_history.size());
  for (const TenantLog& log : outcome.final_history) {
    vectors.push_back(
        EpochizeIntervals(log.tenant_id, log.ActivityIntervals(), epochs));
  }
  THRIFTY_ASSIGN_OR_RETURN(
      PackingProblem problem,
      MakePackingProblem(outcome.final_specs, vectors,
                         config.replication_factor,
                         outcome.min_sla_fraction));
  GroupingSolution solution;
  const DeploymentPlan& plan = outcome.plans.back();
  for (const GroupDeployment& group : plan.groups) {
    TenantGroupResult result;
    for (const TenantSpec& tenant : group.tenants) {
      result.tenant_ids.push_back(tenant.id);
    }
    result.max_nodes = group.LargestTenantNodes();
    solution.groups.push_back(std::move(result));
  }
  return VerifySolution(problem, solution);
}

void ExpectOutcomesMatch(const soak::SoakOutcome& live,
                         const soak::SoakOutcome& replay) {
  EXPECT_EQ(replay.encoded_log, live.encoded_log);
  EXPECT_EQ(replay.event_log_fingerprint, live.event_log_fingerprint);
  EXPECT_EQ(replay.decision_fingerprint, live.decision_fingerprint);
  EXPECT_EQ(replay.controller_fingerprint, live.controller_fingerprint);
  EXPECT_EQ(replay.min_sla_fraction, live.min_sla_fraction);
  ASSERT_EQ(replay.decisions.size(), live.decisions.size());
  for (size_t i = 0; i < live.decisions.size(); ++i) {
    EXPECT_EQ(replay.decisions[i].plan_fingerprint,
              live.decisions[i].plan_fingerprint)
        << "cycle " << i << " plan fingerprints diverge live vs replay";
  }
}

TEST(StreamingSoakTest, SoakIsFeasibleDeterministicAndReplayable) {
  soak::SoakConfig config = SmokeConfig();
  auto live = soak::RunSoak(config);
  ASSERT_TRUE(live.ok()) << live.status();
  ASSERT_EQ(live->decisions.size(), static_cast<size_t>(config.cycles));
  ASSERT_EQ(live->plans.size(), static_cast<size_t>(config.cycles));

  // Monotone event-log offsets: sequences dense from zero, times
  // non-decreasing (DecodeEventLog enforces both; spelled out anyway so a
  // codec regression cannot silently weaken the gate).
  auto events = DecodeEventLog(live->encoded_log);
  ASSERT_TRUE(events.ok()) << events.status();
  for (size_t i = 0; i < events->size(); ++i) {
    ASSERT_EQ((*events)[i].sequence, i);
    if (i > 0) {
      ASSERT_GE((*events)[i].time, (*events)[i - 1].time);
    }
  }

  // Every cycle's plan covers the then-registered population exactly once
  // and the final plan is feasible under min-P.
  Status feasible = VerifyFinalPlan(*live, config);
  EXPECT_TRUE(feasible.ok()) << feasible;

  // Replay identity — same config, then a different solver parallelism;
  // neither may move a single fingerprint byte.
  auto replay = soak::ReplaySoak(config, live->encoded_log);
  ASSERT_TRUE(replay.ok()) << replay.status();
  ExpectOutcomesMatch(*live, *replay);

  soak::SoakConfig parallel = config;
  parallel.solver_jobs = 4;
  auto replay_parallel = soak::ReplaySoak(parallel, live->encoded_log);
  ASSERT_TRUE(replay_parallel.ok()) << replay_parallel.status();
  ExpectOutcomesMatch(*live, *replay_parallel);
}

TEST(StreamingSoakTest, ControllerStaysInConfiguredBand) {
  soak::SoakConfig config = SmokeConfig();
  auto outcome = soak::RunSoak(config);
  ASSERT_TRUE(outcome.ok()) << outcome.status();

  ASSERT_EQ(outcome->controller_trajectory.size(),
            static_cast<size_t>(config.cycles));
  for (double p : outcome->controller_trajectory) {
    EXPECT_GE(p, config.controller.min_sla_fraction);
    EXPECT_LE(p, config.controller.max_sla_fraction);
  }
  // Once feedback flows (cycle 1 on), the observed violation rate must
  // stay within the steering band around the target — the loop is closed,
  // so a runaway P or a dead controller both show up here.
  for (size_t c = 1; c < outcome->observed_violation_rates.size(); ++c) {
    EXPECT_GT(outcome->observed_violation_rates[c], 0.0) << "cycle " << c;
    EXPECT_LE(outcome->observed_violation_rates[c],
              5.0 * config.controller.target_violation_rate)
        << "cycle " << c;
  }
}

TEST(StreamingSoakTest, NodeFailureRepairLeavesOthersUntouched) {
  soak::SoakConfig config = SmokeConfig();
  config.fail_group_at_cycle = 2;
  ASSERT_GE(config.cycles, 4);
  auto outcome = soak::RunSoak(config);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ASSERT_NE(outcome->failed_group, -1);

  const CycleDecision& repair = outcome->decisions[2];
  // The failed group was re-solved: its id is gone from the next plan
  // (delta re-solves assign fresh ids) and listed as resolved.
  EXPECT_TRUE(std::count(repair.resolved_groups.begin(),
                         repair.resolved_groups.end(),
                         outcome->failed_group) == 1 ||
              std::count(repair.dissolved_groups.begin(),
                         repair.dissolved_groups.end(),
                         outcome->failed_group) == 1)
      << "failed group " << outcome->failed_group
      << " was not re-consolidated";
  for (const GroupDeployment& group : outcome->plans[2].groups) {
    EXPECT_NE(group.group_id, outcome->failed_group);
  }

  // Members of the failed group are all re-placed...
  const DeploymentPlan& before = outcome->plans[1];
  const DeploymentPlan& after = outcome->plans[2];
  for (const GroupDeployment& group : before.groups) {
    if (group.group_id != outcome->failed_group) continue;
    for (const TenantSpec& tenant : group.tenants) {
      EXPECT_TRUE(after.GroupOf(tenant.id).ok())
          << "tenant " << tenant.id << " lost in the repair cycle";
    }
  }
  // ...while every untouched group's membership fingerprint is
  // byte-identical across the repair cycle.
  std::unordered_set<GroupId> untouched(repair.untouched_groups.begin(),
                                        repair.untouched_groups.end());
  size_t compared = 0;
  for (const GroupDeployment& group : before.groups) {
    if (!untouched.count(group.group_id)) continue;
    for (const GroupDeployment& now : after.groups) {
      if (now.group_id != group.group_id) continue;
      EXPECT_EQ(GroupFingerprint(now), GroupFingerprint(group))
          << "untouched group " << group.group_id
          << " changed during failure repair";
      ++compared;
    }
  }
  EXPECT_GT(compared, 0u) << "no untouched groups to compare";

  // Fault events replay like any others.
  auto replay = soak::ReplaySoak(config, outcome->encoded_log);
  ASSERT_TRUE(replay.ok()) << replay.status();
  ExpectOutcomesMatch(*outcome, *replay);
}

}  // namespace
}  // namespace thrifty
