#include "scaling/manual_tuning.h"

#include <gtest/gtest.h>

namespace thrifty {
namespace {

TEST(ManualTuningTest, HealthyGroupNeedsNothing) {
  auto advice = AdviseTuning(/*rt_ttp=*/0.9995, /*trending_down=*/false,
                             /*sla=*/0.999, /*n1=*/10, /*u=*/10,
                             /*u_max=*/30, /*overflow_concurrency=*/1);
  ASSERT_TRUE(advice.ok());
  EXPECT_EQ(advice->action, TuningAction::kNone);
  EXPECT_EQ(advice->recommended_tuning_nodes, 10);
}

TEST(ManualTuningTest, ThePaperChapter6Example) {
  // 99.8% RT-TTP vs 99.9% P, flat, three 10-node MPPDBs: raise U from 10
  // (e.g. to 20 for one observed overflow query so both queries keep
  // 10-node-equivalent rate).
  auto advice = AdviseTuning(0.998, false, 0.999, 10, 10, 30, 1);
  ASSERT_TRUE(advice.ok());
  EXPECT_EQ(advice->action, TuningAction::kRaiseTuningNodes);
  EXPECT_EQ(advice->recommended_tuning_nodes, 20);
}

TEST(ManualTuningTest, HigherOverflowConcurrencyNeedsMoreNodes) {
  auto advice = AdviseTuning(0.998, false, 0.999, 10, 10, 40, 2);
  ASSERT_TRUE(advice.ok());
  EXPECT_EQ(advice->action, TuningAction::kRaiseTuningNodes);
  EXPECT_EQ(advice->recommended_tuning_nodes, 30);
}

TEST(ManualTuningTest, TrendingDownEscalatesToElasticScaling) {
  auto advice = AdviseTuning(0.998, /*trending_down=*/true, 0.999, 10, 10,
                             30, 1);
  ASSERT_TRUE(advice.ok());
  EXPECT_EQ(advice->action, TuningAction::kElasticScale);
}

TEST(ManualTuningTest, LargeBreachEscalates) {
  auto advice = AdviseTuning(0.98, false, 0.999, 10, 10, 30, 1);
  ASSERT_TRUE(advice.ok());
  EXPECT_EQ(advice->action, TuningAction::kElasticScale);
}

TEST(ManualTuningTest, CapExhaustedEscalates) {
  // U already at its N - (A-1) n_1 bound: raising is impossible.
  auto advice = AdviseTuning(0.998, false, 0.999, 10, 20, 20, 1);
  ASSERT_TRUE(advice.ok());
  EXPECT_EQ(advice->action, TuningAction::kElasticScale);
}

TEST(ManualTuningTest, ClampsToUpperBound) {
  // Wanted 30 but the bound is 25: clamped recommendation still helps.
  auto advice = AdviseTuning(0.998, false, 0.999, 10, 10, 25, 2);
  ASSERT_TRUE(advice.ok());
  EXPECT_EQ(advice->action, TuningAction::kRaiseTuningNodes);
  EXPECT_EQ(advice->recommended_tuning_nodes, 25);
}

TEST(ManualTuningTest, RejectsBadInputs) {
  EXPECT_FALSE(AdviseTuning(-0.1, false, 0.999, 10, 10, 30, 1).ok());
  EXPECT_FALSE(AdviseTuning(0.998, false, 1.5, 10, 10, 30, 1).ok());
  EXPECT_FALSE(AdviseTuning(0.998, false, 0.999, 10, 5, 30, 1).ok());
  EXPECT_FALSE(AdviseTuning(0.998, false, 0.999, 10, 10, 30, 0).ok());
}

TEST(ManualTuningTest, ActionNames) {
  EXPECT_STREQ(TuningActionToString(TuningAction::kNone), "none");
  EXPECT_STREQ(TuningActionToString(TuningAction::kRaiseTuningNodes),
               "raise-tuning-nodes");
  EXPECT_STREQ(TuningActionToString(TuningAction::kElasticScale),
               "elastic-scale");
}

}  // namespace
}  // namespace thrifty
