#include "mppdb/provisioning.h"

#include <gtest/gtest.h>

namespace thrifty {
namespace {

// Table 5.1 of the paper: the model must reproduce the measured start and
// bulk-load times within a 10% band.
struct Table51Row {
  int nodes;
  double data_gb;
  double start_seconds;
  double load_seconds;
};

constexpr Table51Row kTable51[] = {
    {2, 200, 462, 10172},  {4, 400, 850, 20302},   {6, 600, 1248, 30121},
    {8, 800, 1504, 40853}, {10, 1000, 1779, 50446},
};

class Table51Sweep : public ::testing::TestWithParam<Table51Row> {};

TEST_P(Table51Sweep, StartTimeWithinTenPercent) {
  const Table51Row& row = GetParam();
  ProvisioningModel model;
  double modeled = DurationToSeconds(model.NodeStartTime(row.nodes));
  EXPECT_NEAR(modeled, row.start_seconds, row.start_seconds * 0.10)
      << row.nodes << " nodes";
}

TEST_P(Table51Sweep, LoadTimeWithinTenPercent) {
  const Table51Row& row = GetParam();
  ProvisioningModel model;
  double modeled = DurationToSeconds(model.BulkLoadTime(row.data_gb));
  EXPECT_NEAR(modeled, row.load_seconds, row.load_seconds * 0.10)
      << row.data_gb << " GB";
}

INSTANTIATE_TEST_SUITE_P(Table51, Table51Sweep, ::testing::ValuesIn(kTable51));

TEST(ProvisioningTest, LoadDominatesStart) {
  // The §5.1 premise that motivates lightweight scaling: for any realistic
  // tenant, data loading dwarfs node start-up.
  ProvisioningModel model;
  for (const auto& row : kTable51) {
    EXPECT_GT(model.BulkLoadTime(row.data_gb),
              5 * model.NodeStartTime(row.nodes));
  }
}

TEST(ProvisioningTest, LoadRateAboutOnePointTwoGbPerMinute) {
  ProvisioningModel model;
  double seconds = DurationToSeconds(model.BulkLoadTime(1000));
  double gb_per_minute = 1000 / (seconds / 60);
  EXPECT_NEAR(gb_per_minute, 1.2, 0.1);
}

TEST(ProvisioningTest, ZeroDataLoadsInstantly) {
  ProvisioningModel model;
  EXPECT_EQ(model.BulkLoadTime(0), 0);
}

TEST(ProvisioningTest, TotalIsSum) {
  ProvisioningModel model;
  EXPECT_EQ(model.TotalPrepTime(10, 1000),
            model.NodeStartTime(10) + model.BulkLoadTime(1000));
}

TEST(ProvisioningTest, TenNodeTerabytePrepTakesAbout14Hours) {
  // §5.1: "Thrifty needs about 14.5 hours (50446s + 1779s) to prepare the
  // new MPPDB".
  ProvisioningModel model;
  double hours = DurationToSeconds(model.TotalPrepTime(10, 1000)) / 3600;
  EXPECT_NEAR(hours, 14.5, 1.0);
}

TEST(ProvisioningTest, MonotoneInNodesAndData) {
  ProvisioningModel model;
  EXPECT_LT(model.NodeStartTime(2), model.NodeStartTime(4));
  EXPECT_LT(model.BulkLoadTime(100), model.BulkLoadTime(200));
}

}  // namespace
}  // namespace thrifty
