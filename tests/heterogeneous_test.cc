#include "placement/heterogeneous.h"

#include <gtest/gtest.h>

namespace thrifty {
namespace {

NodeInventory MakeInventory() {
  NodeInventory inventory;
  inventory.classes = {
      {"fast", 4, 2.0},
      {"standard", 10, 1.0},
      {"slow", 8, 0.5},
  };
  return inventory;
}

TEST(HeterogeneousTest, InventoryTotals) {
  NodeInventory inventory = MakeInventory();
  EXPECT_EQ(inventory.TotalNodes(), 22);
  EXPECT_DOUBLE_EQ(inventory.TotalCapability(), 8 + 10 + 4);
}

TEST(HeterogeneousTest, PrefersExactHomogeneousFit) {
  NodeInventory inventory = MakeInventory();
  // Capability 4: two fast nodes (waste 0) beats four standard (waste 0) on
  // node count.
  auto mppdb = AllocateMppdb(&inventory, 4.0);
  ASSERT_TRUE(mppdb.ok()) << mppdb.status();
  ASSERT_EQ(mppdb->allocation.size(), 1u);
  EXPECT_EQ(mppdb->allocation[0], (std::pair<size_t, int>{0, 2}));
  EXPECT_DOUBLE_EQ(mppdb->effective_capability, 4.0);
  EXPECT_EQ(inventory.classes[0].count, 2);  // consumed
}

TEST(HeterogeneousTest, MinimizesWaste) {
  NodeInventory inventory = MakeInventory();
  // Capability 3: three standard (waste 0) beats two fast (waste 1).
  auto mppdb = AllocateMppdb(&inventory, 3.0);
  ASSERT_TRUE(mppdb.ok());
  ASSERT_EQ(mppdb->allocation.size(), 1u);
  EXPECT_EQ(mppdb->allocation[0].first, 1u);
  EXPECT_EQ(mppdb->allocation[0].second, 3);
}

TEST(HeterogeneousTest, MixesWhenNoSingleClassSuffices) {
  NodeInventory inventory = MakeInventory();
  // Capability 12 > any single class's total (fast 8, standard 10, slow 4),
  // so a mixed build is required; the 0.5 mixing penalty applies
  // (fast+standard: discount 0.75, needs raw 16 = 8 fast + 8 standard).
  auto mppdb = AllocateMppdb(&inventory, 12.0);
  ASSERT_TRUE(mppdb.ok()) << mppdb.status();
  EXPECT_GE(mppdb->allocation.size(), 2u);
  EXPECT_GE(mppdb->effective_capability, 12.0);
}

TEST(HeterogeneousTest, MixingPenaltyDiscountsCapability) {
  NodeInventory inventory;
  inventory.classes = {{"fast", 1, 2.0}, {"slow", 10, 1.0}};
  HeterogeneousDesignOptions options;
  options.mixing_penalty = 1.0;  // straggler-bound
  // Raw 2 + k: with full penalty, capability scales by min/max = 0.5.
  auto mppdb = AllocateMppdb(&inventory, 4.0, options);
  ASSERT_TRUE(mppdb.ok());
  // A homogeneous slow build (4 nodes, no discount) should have won over a
  // mixed one.
  ASSERT_EQ(mppdb->allocation.size(), 1u);
  EXPECT_EQ(inventory.classes[1].count, 6);
}

TEST(HeterogeneousTest, FailsWhenInventoryExhausted) {
  NodeInventory inventory = MakeInventory();
  auto result = AllocateMppdb(&inventory, 1000.0);
  EXPECT_EQ(result.status().code(), StatusCode::kCapacityExceeded);
}

TEST(HeterogeneousTest, GroupDesignConsumesAtomically) {
  NodeInventory inventory = MakeInventory();
  // Three MPPDBs of capability 6 each: feasible (total capability 22).
  auto design = DesignHeterogeneousGroupCluster(&inventory, 6.0, 3);
  ASSERT_TRUE(design.ok()) << design.status();
  EXPECT_EQ(design->size(), 3u);
  for (const auto& mppdb : *design) {
    EXPECT_GE(mppdb.effective_capability, 6.0 - 1e-9);
  }

  // A second identical group cannot fit; the inventory must be unchanged
  // by the failed attempt.
  NodeInventory before = inventory;
  auto too_much = DesignHeterogeneousGroupCluster(&inventory, 6.0, 3);
  EXPECT_EQ(too_much.status().code(), StatusCode::kCapacityExceeded);
  for (size_t i = 0; i < inventory.classes.size(); ++i) {
    EXPECT_EQ(inventory.classes[i].count, before.classes[i].count);
  }
}

TEST(HeterogeneousTest, RejectsBadInputs) {
  NodeInventory inventory = MakeInventory();
  EXPECT_FALSE(AllocateMppdb(&inventory, 0).ok());
  EXPECT_FALSE(AllocateMppdb(nullptr, 4).ok());
  NodeInventory bad;
  bad.classes = {{"broken", 2, -1.0}};
  EXPECT_FALSE(AllocateMppdb(&bad, 1).ok());
  EXPECT_FALSE(DesignHeterogeneousGroupCluster(&inventory, 4, 0).ok());
}

TEST(HeterogeneousTest, HomogeneousInventoryMatchesClassicDesign) {
  // With one class at speed 1, the design degenerates to the paper's
  // homogeneous A x n_1 arrangement.
  NodeInventory inventory;
  inventory.classes = {{"standard", 18, 1.0}};
  auto design = DesignHeterogeneousGroupCluster(&inventory, 6.0, 3);
  ASSERT_TRUE(design.ok());
  int total = 0;
  for (const auto& mppdb : *design) total += mppdb.TotalNodes();
  EXPECT_EQ(total, 18);  // 3 x 6, the Fig 4.1 answer
  EXPECT_EQ(inventory.classes[0].count, 0);
}

}  // namespace
}  // namespace thrifty
