#include "soak/soak_harness.h"

#include <memory>
#include <unordered_set>
#include <utility>

#include "common/fnv.h"
#include "common/rng.h"
#include "core/deployment_master.h"
#include "mppdb/catalog.h"
#include "mppdb/cluster.h"
#include "routing/query_router.h"
#include "sim/clock_source.h"
#include "sim/engine.h"
#include "workload/log_generator.h"
#include "workload/tenant_population.h"

namespace thrifty {
namespace soak {

namespace {

/// Activity intervals as a registrable query log (the activity-only form
/// the churn soak uses: one entry per interval, latency = its length).
std::vector<QueryLogEntry> EntriesFor(const IntervalSet& activity) {
  std::vector<QueryLogEntry> entries;
  entries.reserve(activity.size());
  for (const auto& interval : activity.intervals()) {
    entries.push_back({interval.begin, 0, interval.length(), -1});
  }
  return entries;
}

/// The harness's SLA feedback model over the currently deployed plan.
void ModelFeedback(const DeploymentPlan& plan, double amplification,
                   uint64_t* queries, uint64_t* violations) {
  *queries = 0;
  *violations = 0;
  for (const auto& group : plan.groups) {
    uint64_t group_queries = 40 + 20 * group.tenants.size();
    double rate = amplification * (1.0 - group.ttp);
    if (rate > 1.0) rate = 1.0;
    if (rate < 0.0) rate = 0.0;
    uint64_t group_violations = static_cast<uint64_t>(
        static_cast<double>(group_queries) * rate + 0.5);
    if (group_violations > group_queries) group_violations = group_queries;
    *queries += group_queries;
    *violations += group_violations;
  }
}

/// Deterministic failure target: the most-populated group (ties to the
/// lowest id), so the repair re-solve has real members to re-place.
GroupId PickFailureGroup(const DeploymentPlan& plan) {
  GroupId chosen = -1;
  size_t best = 0;
  for (const auto& group : plan.groups) {
    if (group.tenants.size() > best ||
        (group.tenants.size() == best && chosen != -1 &&
         group.group_id < chosen)) {
      best = group.tenants.size();
      chosen = group.group_id;
    }
  }
  return chosen;
}

void FillOutcomeTail(const StreamingService& service, SoakOutcome* out) {
  out->decisions = service.decisions();
  out->controller_trajectory = service.controller().trajectory();
  out->encoded_log = service.EncodeLog();
  out->event_log_fingerprint = Fnv1a64(out->encoded_log);
  out->decision_fingerprint = service.DecisionFingerprint();
  out->controller_fingerprint = service.controller().TrajectoryFingerprint();
  out->min_sla_fraction = service.min_sla_fraction();
  out->final_specs = service.RegisteredSpecs();
  out->final_history = service.CurrentHistory();
  for (const CycleDecision& decision : out->decisions) {
    out->total_solve_wall_ms += decision.solve_wall_ms;
  }
}

}  // namespace

StreamingServiceOptions MakeServiceOptions(const SoakConfig& config) {
  StreamingServiceOptions options;
  options.reconsolidation.advisor.replication_factor =
      config.replication_factor;
  options.reconsolidation.advisor.sla_fraction =
      config.controller.initial_sla_fraction;
  options.reconsolidation.advisor.solver_jobs = config.solver_jobs;
  options.reconsolidation.activity_delta_threshold =
      config.activity_delta_threshold;
  options.controller = config.controller;
  options.history_begin = 0;
  options.history_end = static_cast<SimTime>(config.horizon_days) * kDay;
  options.cycle_period = config.cycle_period;
  options.executor_mode = config.executor_mode;
  return options;
}

Result<SoakOutcome> RunSoak(const SoakConfig& config) {
  // §7.1 Steps 1+2: session library, tenant population, activity logs.
  // Forked Rng streams keyed exactly like the benches', so the schedule is
  // a pure function of config.seed.
  QueryCatalog catalog = QueryCatalog::Default();
  Rng rng(config.seed);
  SessionLibrary library(&catalog, {2, 4, 8, 16, 32},
                         config.sessions_per_class, rng.Fork(1));
  PopulationOptions pop;
  Rng pop_rng = rng.Fork(2);
  const int total_tenants =
      config.initial_tenants + config.cycles * config.churn_per_cycle;
  THRIFTY_ASSIGN_OR_RETURN(
      std::vector<TenantSpec> tenants,
      GenerateTenantPopulation(total_tenants, pop, &pop_rng));
  LogComposerOptions composer_options;
  composer_options.horizon_days = config.horizon_days;
  LogComposer composer(&library, composer_options);
  Rng compose_rng = rng.Fork(3);
  THRIFTY_ASSIGN_OR_RETURN(std::vector<IntervalSet> activity,
                           composer.ComposeActivity(&tenants, &compose_rng));

  StreamingService service(MakeServiceOptions(config));
  VirtualClock clock;
  service.AttachClock(&clock);

  SimEngine engine;
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<QueryRouter> router;
  std::unique_ptr<DeploymentMaster> master;
  if (config.deploy) {
    // R * sum(requested) bounds any plan (each group consumes R * its
    // largest member at most R * the sum of its members), so this pool can
    // never run dry mid-delta.
    int64_t pool = config.replication_factor * TotalRequestedNodes(tenants);
    cluster = std::make_unique<Cluster>(static_cast<int>(pool), &engine);
    router = std::make_unique<QueryRouter>();
    master = std::make_unique<DeploymentMaster>(cluster.get(), router.get());
    service.AttachDeployment(master.get());
  }

  SoakOutcome out;
  std::vector<size_t> registered;
  registered.reserve(static_cast<size_t>(config.initial_tenants));
  for (size_t i = 0; i < static_cast<size_t>(config.initial_tenants); ++i) {
    THRIFTY_RETURN_NOT_OK(service.Ingest(
        MakeRegisterEvent(0, tenants[i], EntriesFor(activity[i]))));
    registered.push_back(i);
  }
  size_t next_fresh = static_cast<size_t>(config.initial_tenants);

  Rng churn_rng = rng.Fork(4);
  for (int c = 0; c < config.cycles; ++c) {
    SimTime t = static_cast<SimTime>(c) * config.cycle_period + kSecond;
    double observed = 0;
    if (c > 0) {
      for (int j = 0; j < config.churn_per_cycle; ++j) {
        size_t pos = churn_rng.NextBounded(registered.size());
        size_t index = registered[pos];
        registered[pos] = registered.back();
        registered.pop_back();
        THRIFTY_RETURN_NOT_OK(
            service.Ingest(MakeDeregisterEvent(t, tenants[index].id)));
        t += kSecond;
      }
      for (int j = 0; j < config.churn_per_cycle; ++j) {
        size_t index = next_fresh++;
        registered.push_back(index);
        THRIFTY_RETURN_NOT_OK(service.Ingest(MakeRegisterEvent(
            t, tenants[index], EntriesFor(activity[index]))));
        t += kSecond;
      }
      std::unordered_set<size_t> drifted;
      while (drifted.size() < static_cast<size_t>(config.drift_per_cycle)) {
        size_t index = registered[churn_rng.NextBounded(registered.size())];
        if (!drifted.insert(index).second) continue;
        THRIFTY_RETURN_NOT_OK(service.Ingest(
            MakeActivityDriftEvent(t, tenants[index].id, 2)));
        t += kSecond;
      }
      uint64_t queries = 0;
      uint64_t violations = 0;
      ModelFeedback(service.current_plan(), config.amplification, &queries,
                    &violations);
      observed = queries > 0 ? static_cast<double>(violations) /
                                   static_cast<double>(queries)
                             : 0.0;
      THRIFTY_RETURN_NOT_OK(service.Ingest(
          MakeSlaReportEvent(t, static_cast<uint32_t>(queries),
                             static_cast<uint32_t>(violations))));
      t += kSecond;
      if (c == config.fail_group_at_cycle) {
        GroupId target = PickFailureGroup(service.current_plan());
        if (target != -1) {
          out.failed_group = target;
          if (config.deploy) {
            std::vector<InstanceId> instances = service.InstancesOf(target);
            if (!instances.empty()) {
              THRIFTY_RETURN_NOT_OK(cluster->InjectNodeFailure(
                  instances[0], /*auto_replace=*/false));
            }
          }
          THRIFTY_RETURN_NOT_OK(
              service.Ingest(MakeGroupFailureEvent(t, target)));
          t += kSecond;
        }
      }
    }
    out.observed_violation_rates.push_back(observed);
    clock.AdvanceTo(static_cast<SimTime>(c + 1) * config.cycle_period);
    THRIFTY_ASSIGN_OR_RETURN(bool ran, service.Tick());
    if (!ran) {
      return Status::Internal("cycle " + std::to_string(c) +
                              " did not run (clock did not advance?)");
    }
    out.plans.push_back(service.current_plan());
  }

  FillOutcomeTail(service, &out);
  return out;
}

Result<SoakOutcome> ReplaySoak(const SoakConfig& config,
                               std::string_view encoded_log) {
  THRIFTY_ASSIGN_OR_RETURN(std::vector<TenantEvent> events,
                           DecodeEventLog(encoded_log));
  StreamingService service(MakeServiceOptions(config));
  SoakOutcome out;
  size_t cycles_seen = 0;
  uint64_t queries = 0;
  uint64_t violations = 0;
  for (TenantEvent& event : events) {
    if (event.type == EventType::kSlaReport) {
      queries += event.queries;
      violations += event.violations;
    }
    if (event.type == EventType::kGroupFailure) out.failed_group = event.group;
    THRIFTY_RETURN_NOT_OK(service.Ingest(std::move(event)));
    if (service.decisions().size() > cycles_seen) {
      ++cycles_seen;
      out.plans.push_back(service.current_plan());
      out.observed_violation_rates.push_back(
          queries > 0 ? static_cast<double>(violations) /
                            static_cast<double>(queries)
                      : 0.0);
      queries = 0;
      violations = 0;
    }
  }
  FillOutcomeTail(service, &out);
  return out;
}

}  // namespace soak
}  // namespace thrifty
