// cppsuite-style soak harness for the streaming service.
//
// One reusable driver behind the stress tests and the soak bench: it
// generates a tenant population (§7.1 Steps 1+2), opens a StreamingService
// on a virtual clock, and feeds it a deterministic schedule of register /
// deregister / activity-drift events plus closed-loop SLA feedback — per
// cycle the harness models each group's violation rate from its solved TTP
// and reports it as a kSlaReport event, so the violation-budget controller
// has real dynamics to steer and a replay of the recorded log trivially
// reproduces them. Optionally every plan is applied to a simulated cluster
// through the Deployment Master, and a node failure can be injected
// mid-soak to exercise failure-triggered repair.

#ifndef THRIFTY_TESTS_SOAK_SOAK_HARNESS_H_
#define THRIFTY_TESTS_SOAK_SOAK_HARNESS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "service/streaming_service.h"

namespace thrifty {
namespace soak {

/// \brief Scenario knobs. Defaults are the CI smoke scale; the --long soak
/// raises tenants/cycles.
struct SoakConfig {
  int initial_tenants = 120;
  int cycles = 5;
  /// Tenants de-registered = freshly registered per cycle (from cycle 1 on;
  /// cycle 0 is the initial consolidation).
  int churn_per_cycle = 3;
  /// Tenants whose activity drifts (log thinned by 2x) per cycle.
  int drift_per_cycle = 2;
  int horizon_days = 3;
  int sessions_per_class = 10;
  uint64_t seed = 42;
  int solver_jobs = 1;
  int replication_factor = 3;
  SimDuration cycle_period = kHour;
  /// Inject a node failure into the most-populated group right before this
  /// cycle's mark (0-based); -1 disables.
  int fail_group_at_cycle = -1;
  /// Apply every plan delta to a simulated cluster through the Deployment
  /// Master (replays run without one and must still match byte-for-byte).
  bool deploy = true;
  /// Feedback model: a group's observed violation rate is
  /// amplification * (1 - ttp), capped at 1 — the raw 1 - ttp of a freshly
  /// solved group is pinned near zero by the solver's safety margin, so
  /// without amplification the controller would only ever relax.
  double amplification = 20.0;
  SlaControllerOptions controller;
  /// ReconsolidationOptions::activity_delta_threshold for the per-cycle
  /// delta solves.
  double activity_delta_threshold = 0.003;
  /// Executor mode the deployed cluster's instances run in (deploy=true).
  /// Planning is executor-blind, so every fingerprint in SoakOutcome must
  /// be identical across modes — the soak bench gates on it.
  PsExecutorMode executor_mode = PsExecutorMode::kVirtualTime;
};

/// \brief Everything the soak gates compare between a live run and a
/// replay of its recorded event log.
struct SoakOutcome {
  std::vector<CycleDecision> decisions;
  /// Deployment plan after each cycle (index = cycle).
  std::vector<DeploymentPlan> plans;
  /// Violation rate fed to the controller before each cycle's mark (0 for
  /// cycle 0, which has no feedback yet).
  std::vector<double> observed_violation_rates;
  std::vector<double> controller_trajectory;
  std::string encoded_log;
  uint64_t event_log_fingerprint = 0;
  uint64_t decision_fingerprint = 0;
  uint64_t controller_fingerprint = 0;
  /// Smallest P any cycle solved under (the sound bound for feasibility
  /// verification of carried-over groups).
  double min_sla_fraction = 1.0;
  std::vector<TenantSpec> final_specs;
  std::vector<TenantLog> final_history;
  /// Group the injected node failure hit; -1 when disabled.
  GroupId failed_group = -1;
  double total_solve_wall_ms = 0;
};

/// \brief Service options the soak runs under — shared by RunSoak and
/// ReplaySoak so a replay is configured identically to its live run (only
/// solver_jobs may legitimately differ; fingerprints must not).
StreamingServiceOptions MakeServiceOptions(const SoakConfig& config);

/// \brief Live soak: workload generation, event schedule, feedback loop,
/// optional cluster deployment, `cycles` re-consolidation cycles.
Result<SoakOutcome> RunSoak(const SoakConfig& config);

/// \brief Replays an encoded event log through a fresh service (no
/// cluster, no clock) and returns the same outcome surface.
Result<SoakOutcome> ReplaySoak(const SoakConfig& config,
                               std::string_view encoded_log);

}  // namespace soak
}  // namespace thrifty

#endif  // THRIFTY_TESTS_SOAK_SOAK_HARNESS_H_
