#include "common/interval.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace thrifty {
namespace {

TEST(TimeIntervalTest, Basics) {
  TimeInterval iv{10, 20};
  EXPECT_EQ(iv.length(), 10);
  EXPECT_FALSE(iv.empty());
  EXPECT_TRUE(iv.Contains(10));
  EXPECT_TRUE(iv.Contains(19));
  EXPECT_FALSE(iv.Contains(20));
  EXPECT_TRUE(iv.Overlaps({19, 25}));
  EXPECT_FALSE(iv.Overlaps({20, 25}));  // half-open: touching != overlap
}

TEST(IntervalSetTest, EmptyAddIgnored) {
  IntervalSet set;
  set.Add(5, 5);
  set.Add(7, 3);
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.TotalLength(), 0);
}

TEST(IntervalSetTest, MergesOverlapping) {
  IntervalSet set;
  set.Add(0, 10);
  set.Add(5, 15);
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.intervals()[0], (TimeInterval{0, 15}));
}

TEST(IntervalSetTest, CoalescesAdjacent) {
  IntervalSet set;
  set.Add(0, 10);
  set.Add(10, 20);
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.TotalLength(), 20);
}

TEST(IntervalSetTest, KeepsDisjoint) {
  IntervalSet set;
  set.Add(20, 30);
  set.Add(0, 10);
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.intervals()[0], (TimeInterval{0, 10}));
  EXPECT_EQ(set.intervals()[1], (TimeInterval{20, 30}));
  EXPECT_EQ(set.TotalLength(), 20);
}

TEST(IntervalSetTest, ContainsAndOverlaps) {
  IntervalSet set;
  set.Add(0, 10);
  set.Add(20, 30);
  EXPECT_TRUE(set.Contains(0));
  EXPECT_FALSE(set.Contains(10));
  EXPECT_FALSE(set.Contains(15));
  EXPECT_TRUE(set.Contains(25));
  EXPECT_TRUE(set.OverlapsRange(9, 11));
  EXPECT_FALSE(set.OverlapsRange(10, 20));
  EXPECT_TRUE(set.OverlapsRange(15, 21));
  EXPECT_FALSE(set.OverlapsRange(30, 40));
}

TEST(IntervalSetTest, ClipCutsBoundaries) {
  IntervalSet set;
  set.Add(0, 10);
  set.Add(20, 30);
  IntervalSet clipped = set.Clip(5, 25);
  ASSERT_EQ(clipped.size(), 2u);
  EXPECT_EQ(clipped.intervals()[0], (TimeInterval{5, 10}));
  EXPECT_EQ(clipped.intervals()[1], (TimeInterval{20, 25}));
}

TEST(IntervalSetTest, ShiftMovesEverything) {
  IntervalSet set;
  set.Add(0, 10);
  IntervalSet shifted = set.Shift(100);
  ASSERT_EQ(shifted.size(), 1u);
  EXPECT_EQ(shifted.intervals()[0], (TimeInterval{100, 110}));
}

TEST(IntervalSetTest, UnionOfSets) {
  IntervalSet a, b;
  a.Add(0, 10);
  b.Add(5, 20);
  b.Add(30, 40);
  a.Union(b);
  EXPECT_EQ(a.TotalLength(), 30);
  EXPECT_EQ(a.size(), 2u);
}

TEST(IntervalSetTest, VectorConstructorNormalizes) {
  IntervalSet set({{20, 30}, {0, 10}, {5, 15}, {40, 40}});
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.intervals()[0], (TimeInterval{0, 15}));
  EXPECT_EQ(set.intervals()[1], (TimeInterval{20, 30}));
}

TEST(IntervalSetTest, ClipOutsideRangeIsEmpty) {
  IntervalSet set;
  set.Add(10, 20);
  EXPECT_TRUE(set.Clip(20, 30).empty());
  EXPECT_TRUE(set.Clip(0, 10).empty());
  EXPECT_TRUE(set.Clip(15, 15).empty());
}

TEST(IntervalSetTest, UnionWithEmpty) {
  IntervalSet a, empty;
  a.Add(0, 5);
  a.Union(empty);
  EXPECT_EQ(a.TotalLength(), 5);
  empty.Union(a);
  EXPECT_EQ(empty.TotalLength(), 5);
}

// Property test: IntervalSet agrees with a brute-force boolean timeline.
TEST(IntervalSetTest, MatchesBruteForceOnRandomInput) {
  Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    const int horizon = 200;
    std::vector<bool> truth(horizon, false);
    IntervalSet set;
    for (int i = 0; i < 30; ++i) {
      SimTime b = rng.NextInt(0, horizon - 1);
      SimTime e = rng.NextInt(b, horizon);
      set.Add(b, e);
      for (SimTime t = b; t < e; ++t) truth[static_cast<size_t>(t)] = true;
    }
    SimDuration truth_len = 0;
    for (bool v : truth) truth_len += v ? 1 : 0;
    EXPECT_EQ(set.TotalLength(), truth_len);
    for (SimTime t = 0; t < horizon; ++t) {
      ASSERT_EQ(set.Contains(t), truth[static_cast<size_t>(t)])
          << "trial " << trial << " t " << t;
    }
    // Normalized form must be sorted and disjoint.
    const auto& ivs = set.intervals();
    for (size_t i = 1; i < ivs.size(); ++i) {
      ASSERT_GT(ivs[i].begin, ivs[i - 1].end);
    }
  }
}

}  // namespace
}  // namespace thrifty
