// Tenant event stream codec: randomized round-trip properties and strict
// rejection of malformed logs.

#include "service/event_stream.h"

#include <string>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace thrifty {
namespace {

/// Draws one random event of any type. Times are non-decreasing (the
/// caller threads `now` through) and sequences dense, as the service would
/// stamp them.
TenantEvent RandomEvent(Rng* rng, uint64_t sequence, SimTime* now) {
  *now += static_cast<SimTime>(rng->NextBounded(5000));
  TenantEvent event;
  switch (rng->NextBounded(6)) {
    case 0: {
      TenantSpec spec;
      spec.id = static_cast<TenantId>(rng->NextBounded(10000));
      spec.requested_nodes = static_cast<int>(1 + rng->NextBounded(32));
      spec.data_gb = static_cast<double>(rng->NextBounded(3200)) / 10.0;
      spec.suite =
          rng->NextBounded(2) == 0 ? QuerySuite::kTpch : QuerySuite::kTpcds;
      spec.time_zone_offset_hours = static_cast<int>(rng->NextBounded(24));
      spec.max_users = static_cast<int>(1 + rng->NextBounded(5));
      std::vector<QueryLogEntry> entries;
      size_t count = rng->NextBounded(8);
      SimTime submit = 0;
      for (size_t i = 0; i < count; ++i) {
        submit += static_cast<SimTime>(rng->NextBounded(100000));
        entries.push_back({submit, static_cast<TemplateId>(rng->NextBounded(22)),
                           static_cast<SimDuration>(1 + rng->NextBounded(60000)),
                           static_cast<int32_t>(rng->NextBounded(3)) - 1});
      }
      event = MakeRegisterEvent(*now, spec, std::move(entries));
      break;
    }
    case 1:
      event = MakeDeregisterEvent(*now,
                                  static_cast<TenantId>(rng->NextBounded(10000)));
      break;
    case 2:
      event = MakeActivityDriftEvent(
          *now, static_cast<TenantId>(rng->NextBounded(10000)),
          static_cast<uint32_t>(1 + rng->NextBounded(16)));
      break;
    case 3: {
      uint32_t queries = static_cast<uint32_t>(rng->NextBounded(100000));
      event = MakeSlaReportEvent(
          *now, queries, static_cast<uint32_t>(rng->NextBounded(queries + 1)));
      break;
    }
    case 4:
      event = MakeGroupFailureEvent(
          *now, static_cast<ServiceGroupId>(rng->NextBounded(500)));
      break;
    default:
      event = MakeCycleMarkEvent(*now);
      break;
  }
  event.sequence = sequence;
  return event;
}

std::vector<TenantEvent> RandomLog(uint64_t seed, size_t count) {
  Rng rng = Rng(seed).Fork(0xe7e7);
  std::vector<TenantEvent> events;
  SimTime now = 0;
  for (size_t i = 0; i < count; ++i) {
    events.push_back(RandomEvent(&rng, i, &now));
  }
  return events;
}

void ExpectEventsEqual(const TenantEvent& a, const TenantEvent& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.sequence, b.sequence);
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.tenant, b.tenant);
  EXPECT_EQ(a.spec.id, b.spec.id);
  EXPECT_EQ(a.spec.requested_nodes, b.spec.requested_nodes);
  EXPECT_EQ(a.spec.data_gb, b.spec.data_gb);
  EXPECT_EQ(a.spec.suite, b.spec.suite);
  EXPECT_EQ(a.spec.time_zone_offset_hours, b.spec.time_zone_offset_hours);
  EXPECT_EQ(a.spec.max_users, b.spec.max_users);
  ASSERT_EQ(a.log_entries.size(), b.log_entries.size());
  for (size_t i = 0; i < a.log_entries.size(); ++i) {
    EXPECT_EQ(a.log_entries[i].submit_time, b.log_entries[i].submit_time);
    EXPECT_EQ(a.log_entries[i].template_id, b.log_entries[i].template_id);
    EXPECT_EQ(a.log_entries[i].observed_latency,
              b.log_entries[i].observed_latency);
    EXPECT_EQ(a.log_entries[i].batch_id, b.log_entries[i].batch_id);
  }
  EXPECT_EQ(a.stride, b.stride);
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.group, b.group);
}

TEST(EventStreamTest, EmptyLogRoundTrips) {
  std::string encoded = EncodeEventLog({});
  EXPECT_EQ(encoded.size(), 8u);  // magic only
  auto decoded = DecodeEventLog(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->empty());
}

TEST(EventStreamTest, RandomizedRoundTripIsExact) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    std::vector<TenantEvent> events = RandomLog(seed, 40);
    std::string encoded = EncodeEventLog(events);
    auto decoded = DecodeEventLog(encoded);
    ASSERT_TRUE(decoded.ok()) << "seed " << seed << ": " << decoded.status();
    ASSERT_EQ(decoded->size(), events.size());
    for (size_t i = 0; i < events.size(); ++i) {
      ExpectEventsEqual(events[i], (*decoded)[i]);
    }
    // Re-encoding the decoded events reproduces the exact bytes — the
    // canonical-form property every replay gate leans on.
    EXPECT_EQ(EncodeEventLog(*decoded), encoded) << "seed " << seed;
    EXPECT_EQ(EventLogFingerprint(*decoded), EventLogFingerprint(events));
  }
}

TEST(EventStreamTest, RejectsBadMagic) {
  std::string encoded = EncodeEventLog(RandomLog(7, 3));
  encoded[0] = 'X';
  auto decoded = DecodeEventLog(encoded);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("bad magic"), std::string::npos)
      << decoded.status();
}

TEST(EventStreamTest, RejectsTruncatedTail) {
  std::vector<TenantEvent> events = RandomLog(11, 10);
  std::string encoded = EncodeEventLog(events);
  // Record boundaries: cutting exactly there yields a shorter valid log
  // (the format is a plain record stream); cutting anywhere else must be
  // rejected with a truncation error naming the offset, never silently
  // decoded short.
  std::vector<size_t> boundaries;
  {
    std::string prefix;
    for (const TenantEvent& event : events) {
      AppendEventRecord(event, &prefix);
      boundaries.push_back(8 + prefix.size());
    }
  }
  size_t next_boundary = 0;
  for (size_t cut = 9; cut < encoded.size(); ++cut) {
    while (next_boundary < boundaries.size() &&
           boundaries[next_boundary] < cut) {
      ++next_boundary;
    }
    bool on_boundary = next_boundary < boundaries.size() &&
                       boundaries[next_boundary] == cut;
    auto decoded = DecodeEventLog(std::string_view(encoded).substr(0, cut));
    if (on_boundary) {
      ASSERT_TRUE(decoded.ok()) << "cut at boundary " << cut << ": "
                                << decoded.status();
      EXPECT_EQ(decoded->size(), next_boundary + 1);
    } else {
      ASSERT_FALSE(decoded.ok()) << "cut at " << cut;
      EXPECT_NE(decoded.status().message().find("truncated"),
                std::string::npos)
          << decoded.status();
      EXPECT_NE(decoded.status().message().find("offset"), std::string::npos);
    }
  }
}

TEST(EventStreamTest, RejectsNonContiguousSequence) {
  std::vector<TenantEvent> events = RandomLog(13, 5);
  events[3].sequence = 7;  // gap
  auto decoded = DecodeEventLog(EncodeEventLog(events));
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("non-contiguous sequence 7"),
            std::string::npos)
      << decoded.status();
}

TEST(EventStreamTest, RejectsTimeRegression) {
  std::vector<TenantEvent> events;
  events.push_back(MakeCycleMarkEvent(1000));
  events.push_back(MakeCycleMarkEvent(999));
  events[0].sequence = 0;
  events[1].sequence = 1;
  auto decoded = DecodeEventLog(EncodeEventLog(events));
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("regresses in time"),
            std::string::npos)
      << decoded.status();
}

TEST(EventStreamTest, RejectsUnknownEventType) {
  std::string encoded = EncodeEventLog({MakeCycleMarkEvent(0)});
  encoded[8] = static_cast<char>(99);  // first record's type byte
  auto decoded = DecodeEventLog(encoded);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("unknown event type 99"),
            std::string::npos)
      << decoded.status();
}

TEST(EventStreamTest, RejectsUnknownSuite) {
  TenantSpec spec;
  spec.id = 1;
  spec.requested_nodes = 2;
  std::string encoded = EncodeEventLog({MakeRegisterEvent(0, spec, {})});
  // Record layout: type(1) + sequence(8) + time(8) + tenant(4) +
  // requested_nodes(4) + data_gb(8) puts the suite byte at offset
  // 8 + 1 + 8 + 8 + 4 + 4 + 8.
  encoded[8 + 1 + 8 + 8 + 4 + 4 + 8] = static_cast<char>(42);
  auto decoded = DecodeEventLog(encoded);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("unknown benchmark suite 42"),
            std::string::npos)
      << decoded.status();
}

TEST(EventStreamTest, RejectsZeroDriftStride) {
  std::vector<TenantEvent> events = {MakeActivityDriftEvent(0, 3, 1)};
  std::string encoded = EncodeEventLog(events);
  // Stride is the trailing u32 of the record.
  for (size_t i = encoded.size() - 4; i < encoded.size(); ++i) {
    encoded[i] = 0;
  }
  auto decoded = DecodeEventLog(encoded);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("zero drift stride"),
            std::string::npos)
      << decoded.status();
}

TEST(EventStreamTest, FingerprintIsSeedStable) {
  // Same seed, same fingerprint; different seed, different fingerprint
  // (overwhelmingly) — the id-keyed Rng makes the property replayable.
  uint64_t a1 = EventLogFingerprint(RandomLog(99, 30));
  uint64_t a2 = EventLogFingerprint(RandomLog(99, 30));
  uint64_t b = EventLogFingerprint(RandomLog(100, 30));
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
}

}  // namespace
}  // namespace thrifty
