#include "mppdb/query_model.h"

#include <gtest/gtest.h>

namespace thrifty {
namespace {

QueryTemplate MakeTemplate(double work, double serial) {
  QueryTemplate t;
  t.id = 0;
  t.name = "test";
  t.work_seconds_per_gb = work;
  t.serial_fraction = serial;
  return t;
}

TEST(QueryModelTest, SingleNodeLatencyIsWorkTimesData) {
  QueryTemplate t = MakeTemplate(2.0, 0.0);
  EXPECT_EQ(t.DedicatedLatency(100, 1), SecondsToDuration(200));
}

TEST(QueryModelTest, FullyParallelScalesLinearly) {
  QueryTemplate t = MakeTemplate(1.0, 0.0);
  SimDuration one = t.DedicatedLatency(100, 1);
  EXPECT_EQ(t.DedicatedLatency(100, 2), one / 2);
  EXPECT_EQ(t.DedicatedLatency(100, 4), one / 4);
  EXPECT_EQ(t.DedicatedLatency(100, 10), one / 10);
}

TEST(QueryModelTest, SerialFractionLimitsSpeedup) {
  QueryTemplate t = MakeTemplate(1.0, 0.5);
  // Amdahl: max speedup 2 regardless of nodes.
  EXPECT_LT(t.Speedup(1000), 2.0);
  EXPECT_NEAR(t.Speedup(1000), 2.0, 0.01);
  EXPECT_NEAR(t.Speedup(2), 1.0 / (0.5 + 0.25), 1e-12);
}

TEST(QueryModelTest, LatencyMonotoneDecreasingInNodes) {
  QueryTemplate t = MakeTemplate(0.35, 0.35);
  SimDuration prev = t.DedicatedLatency(100, 1);
  for (int n = 2; n <= 64; n *= 2) {
    SimDuration cur = t.DedicatedLatency(100, n);
    EXPECT_LE(cur, prev);
    prev = cur;
  }
}

TEST(QueryModelTest, LatencyProportionalToData) {
  QueryTemplate t = MakeTemplate(0.5, 0.1);
  SimDuration base = t.DedicatedLatency(100, 4);
  EXPECT_NEAR(static_cast<double>(t.DedicatedLatency(200, 4)),
              2.0 * static_cast<double>(base), 2.0);
}

TEST(QueryModelTest, MinimumOneTick) {
  QueryTemplate t = MakeTemplate(1e-9, 0.0);
  EXPECT_EQ(t.DedicatedLatency(0.001, 32), 1);
}

TEST(QueryModelTest, LinearScaleOutClassification) {
  QueryTemplate q1 = MakeTemplate(0.6, 0.02);
  QueryTemplate q19 = MakeTemplate(0.35, 0.35);
  // The paper's Fig 1.1 dichotomy: Q1 is linear at the tested node counts,
  // Q19 is not.
  EXPECT_TRUE(IsLinearScaleOut(q1, 8));
  EXPECT_FALSE(IsLinearScaleOut(q19, 8));
}

class SpeedupSweep : public ::testing::TestWithParam<int> {};

TEST_P(SpeedupSweep, SpeedupBetweenOneAndNodes) {
  int nodes = GetParam();
  for (double s : {0.0, 0.05, 0.2, 0.5, 0.9}) {
    QueryTemplate t = MakeTemplate(1.0, s);
    double speedup = t.Speedup(nodes);
    EXPECT_GE(speedup, 1.0 - 1e-12);
    EXPECT_LE(speedup, static_cast<double>(nodes) + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Nodes, SpeedupSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

}  // namespace
}  // namespace thrifty
