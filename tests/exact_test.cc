#include "placement/exact.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fig51_fixture.h"
#include "placement/ffd.h"
#include "placement/two_step.h"

namespace thrifty {
namespace {

using testing_fixtures::Fig51Activities;

std::vector<TenantSpec> UniformTenants(size_t count, int nodes) {
  std::vector<TenantSpec> tenants(count);
  for (size_t i = 0; i < count; ++i) {
    tenants[i].id = static_cast<TenantId>(i + 1);
    tenants[i].requested_nodes = nodes;
  }
  return tenants;
}

TEST(ExactTest, OptimalOnFig51EqualsTwoStep) {
  auto activities = Fig51Activities();
  auto tenants = UniformTenants(6, 4);
  auto problem = MakePackingProblem(tenants, activities, 3, 0.999);
  ASSERT_TRUE(problem.ok());
  auto exact = SolveExact(*problem);
  ASSERT_TRUE(exact.ok()) << exact.status();
  EXPECT_TRUE(VerifySolution(*problem, *exact).ok());
  // Two groups of 4-node tenants: 2 x 3 x 4 = 24 nodes is optimal (one
  // group is impossible: TTP(3) of all six is 90%).
  EXPECT_EQ(exact->NodesUsed(3), 24);
  auto two_step = SolveTwoStep(*problem);
  ASSERT_TRUE(two_step.ok());
  EXPECT_EQ(two_step->NodesUsed(3), exact->NodesUsed(3));
}

TEST(ExactTest, NeverWorseThanHeuristics) {
  Rng rng(31);
  for (int trial = 0; trial < 8; ++trial) {
    const size_t num_epochs = 60;
    std::vector<ActivityVector> activities;
    std::vector<TenantSpec> tenants;
    const int sizes[] = {2, 4};
    for (TenantId id = 0; id < 8; ++id) {
      DynamicBitmap bits(num_epochs);
      size_t begin = rng.NextBounded(num_epochs);
      bits.SetRange(begin, begin + 5 + rng.NextBounded(20));
      activities.push_back(ActivityVector::FromBitmap(id, bits));
      TenantSpec spec;
      spec.id = id;
      spec.requested_nodes = sizes[rng.NextBounded(2)];
      tenants.push_back(spec);
    }
    auto problem = MakePackingProblem(tenants, activities, 2, 0.95);
    ASSERT_TRUE(problem.ok());
    auto exact = SolveExact(*problem);
    ASSERT_TRUE(exact.ok()) << exact.status();
    EXPECT_TRUE(VerifySolution(*problem, *exact).ok());
    auto two_step = SolveTwoStep(*problem);
    auto ffd = SolveFfd(*problem);
    ASSERT_TRUE(two_step.ok() && ffd.ok());
    EXPECT_LE(exact->NodesUsed(2), two_step->NodesUsed(2)) << trial;
    EXPECT_LE(exact->NodesUsed(2), ffd->NodesUsed(2)) << trial;
  }
}

TEST(ExactTest, SingleTenantTrivial) {
  DynamicBitmap bits(10);
  bits.SetRange(0, 10);
  std::vector<ActivityVector> activities;
  activities.push_back(ActivityVector::FromBitmap(1, bits));
  auto tenants = UniformTenants(1, 8);
  auto problem = MakePackingProblem(tenants, activities, 3, 0.999);
  ASSERT_TRUE(problem.ok());
  auto exact = SolveExact(*problem);
  ASSERT_TRUE(exact.ok());
  ASSERT_EQ(exact->groups.size(), 1u);
  EXPECT_EQ(exact->NodesUsed(3), 24);
}

TEST(ExactTest, BudgetExhaustionReportsCleanly) {
  // Plenty of mutually compatible tenants + a one-node search budget.
  std::vector<ActivityVector> activities;
  std::vector<TenantSpec> tenants = UniformTenants(10, 2);
  for (TenantId id = 1; id <= 10; ++id) {
    DynamicBitmap bits(100);
    bits.SetRange(static_cast<size_t>(id) * 5, static_cast<size_t>(id) * 5 + 2);
    activities.push_back(ActivityVector::FromBitmap(id, bits));
  }
  auto problem = MakePackingProblem(tenants, activities, 3, 0.999);
  ASSERT_TRUE(problem.ok());
  ExactSolverOptions options;
  options.max_search_nodes = 10;
  auto result = SolveExact(*problem, options);
  EXPECT_EQ(result.status().code(), StatusCode::kCapacityExceeded);
  // The message must say how far the search got and what the budget was.
  const std::string message = result.status().message();
  EXPECT_NE(message.find("budget exhausted"), std::string::npos) << message;
  EXPECT_NE(message.find("of 10 search nodes"), std::string::npos) << message;
}

TEST(ExactTest, RespectsFuzzyCapacityAtExactBoundary) {
  // Two tenants overlapping in exactly 1 of 20 epochs; R=1.
  // P = 0.95 admits them together (19/20), P = 0.96 forbids it.
  DynamicBitmap a(20), b(20);
  a.SetRange(0, 10);
  b.SetRange(9, 19);
  std::vector<ActivityVector> activities;
  activities.push_back(ActivityVector::FromBitmap(1, a));
  activities.push_back(ActivityVector::FromBitmap(2, b));
  auto tenants = UniformTenants(2, 4);

  auto loose = MakePackingProblem(tenants, activities, 1, 0.95);
  ASSERT_TRUE(loose.ok());
  auto loose_solution = SolveExact(*loose);
  ASSERT_TRUE(loose_solution.ok());
  EXPECT_EQ(loose_solution->groups.size(), 1u);

  auto tight = MakePackingProblem(tenants, activities, 1, 0.96);
  ASSERT_TRUE(tight.ok());
  auto tight_solution = SolveExact(*tight);
  ASSERT_TRUE(tight_solution.ok());
  EXPECT_EQ(tight_solution->groups.size(), 2u);
}

}  // namespace
}  // namespace thrifty
