#include "common/histogram.h"

#include <gtest/gtest.h>

namespace thrifty {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0);
  EXPECT_EQ(h.Percentile(0.5), 0);
  EXPECT_EQ(h.FractionAtMost(10), 1.0);
}

TEST(HistogramTest, TracksExtremesAndMeanExactly) {
  Histogram h;
  h.Add(1.0);
  h.Add(2.0);
  h.Add(9.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 9.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 4.0);
}

TEST(HistogramTest, PercentileBoundedRelativeError) {
  Histogram h(1.0, 1.05);
  for (int i = 1; i <= 1000; ++i) h.Add(static_cast<double>(i));
  EXPECT_NEAR(h.Percentile(0.5), 500, 500 * 0.06);
  EXPECT_NEAR(h.Percentile(0.99), 990, 990 * 0.06);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 1000);
}

TEST(HistogramTest, FractionAtMost) {
  Histogram h(0.01, 1.02);
  for (int i = 0; i < 90; ++i) h.Add(1.0);
  for (int i = 0; i < 10; ++i) h.Add(5.0);
  EXPECT_NEAR(h.FractionAtMost(1.01), 0.9, 0.001);
  EXPECT_NEAR(h.FractionAtMost(10.0), 1.0, 0.001);
  EXPECT_NEAR(h.FractionAtMost(0.5), 0.0, 0.001);
}

TEST(HistogramTest, FractionAtMostExcludesValuesAboveThreshold) {
  // Regression: with growth 2.0 the bucket ranges are (1,2], (2,4], (4,8].
  // 3.0 and 3.5 share the (2,4] bucket; a threshold of 3.0 inside that
  // bucket must not count either of them (bucket-granular lower bound) —
  // the old code counted both, reporting 3.5 <= 3.0.
  Histogram h(1.0, 2.0);
  h.Add(1.5);  // bucket (1,2]
  h.Add(3.0);  // bucket (2,4]
  h.Add(3.5);  // bucket (2,4]
  h.Add(5.0);  // bucket (4,8]
  EXPECT_NEAR(h.FractionAtMost(3.0), 0.25, 1e-12);   // only 1.5 is certain
  EXPECT_NEAR(h.FractionAtMost(3.75), 0.25, 1e-12);  // still mid-bucket
  EXPECT_NEAR(h.FractionAtMost(4.0), 0.75, 1e-12);   // exact upper bound
  EXPECT_NEAR(h.FractionAtMost(8.0), 1.0, 1e-12);
}

TEST(HistogramTest, FractionAtMostIsLowerBoundOfTrueFraction) {
  Histogram h(0.01, 1.05);
  int at_most = 0;
  const double threshold = 1.37;
  for (int i = 1; i <= 500; ++i) {
    double v = 0.01 * static_cast<double>(i);
    h.Add(v);
    if (v <= threshold) ++at_most;
  }
  double exact = static_cast<double>(at_most) / 500.0;
  EXPECT_LE(h.FractionAtMost(threshold), exact + 1e-12);
  // Pessimism is bounded by one bucket's mass (relative width growth - 1).
  EXPECT_GE(h.FractionAtMost(threshold), exact - 0.06);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a, b;
  a.Add(1.0);
  a.Add(2.0);
  b.Add(10.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.max(), 10.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_NEAR(a.Mean(), 13.0 / 3, 1e-12);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Add(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0);
}

TEST(HistogramTest, ZeroValuesLandInFirstBucket) {
  Histogram h;
  h.Add(0.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_NEAR(h.FractionAtMost(1.0), 1.0, 1e-12);
}

}  // namespace
}  // namespace thrifty
