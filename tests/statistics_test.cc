#include "workload/statistics.h"

#include <sstream>

#include <gtest/gtest.h>

namespace thrifty {
namespace {

TenantLog MakeLog() {
  TenantLog log;
  log.tenant_id = 7;
  // Two singles and a 2-query batch; activity [0,60) + [100,160)+[100,130).
  log.entries.push_back({0, 1, 60 * kSecond, -1});
  log.entries.push_back({100 * kSecond, 2, 60 * kSecond, 5});
  log.entries.push_back({100 * kSecond, 3, 30 * kSecond, 5});
  log.entries.push_back({400 * kSecond, 4, 20 * kSecond, -1});
  return log;
}

TEST(StatisticsTest, TenantSummaryCounts) {
  auto summary = SummarizeTenantLog(MakeLog(), 0, 1000 * kSecond);
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_EQ(summary->tenant_id, 7);
  EXPECT_EQ(summary->queries, 4u);
  EXPECT_EQ(summary->batches, 1u);
  EXPECT_DOUBLE_EQ(summary->batch_query_fraction, 0.5);
  EXPECT_DOUBLE_EQ(summary->latency_seconds.Mean(), (60 + 60 + 30 + 20) / 4.0);
  // Active: [0,60) + [100,160) + [400,420) = 140 s of 1000 s.
  EXPECT_DOUBLE_EQ(summary->active_ratio, 0.14);
  EXPECT_DOUBLE_EQ(summary->longest_active_stretch_seconds, 60);
  EXPECT_NEAR(summary->queries_per_active_hour, 4 / (140.0 / 3600), 1e-9);
}

TEST(StatisticsTest, WindowFiltersEntries) {
  auto summary =
      SummarizeTenantLog(MakeLog(), 50 * kSecond, 200 * kSecond);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->queries, 2u);  // only the batch
  // Active within [50,200): [50,60) + [100,160) = 70 of 150 s.
  EXPECT_NEAR(summary->active_ratio, 70.0 / 150, 1e-9);
}

TEST(StatisticsTest, EmptyWindowRejected) {
  EXPECT_FALSE(SummarizeTenantLog(MakeLog(), 10, 10).ok());
}

TEST(StatisticsTest, WorkloadAggregation) {
  std::vector<TenantLog> logs = {MakeLog()};
  TenantLog quiet;
  quiet.tenant_id = 8;
  quiet.entries.push_back({0, 1, 10 * kSecond, -1});
  logs.push_back(quiet);
  auto summary = SummarizeWorkload(logs, 0, 1000 * kSecond);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->tenants.size(), 2u);
  EXPECT_EQ(summary->total_queries, 5u);
  EXPECT_EQ(summary->latency_seconds.count(), 5u);
  EXPECT_NEAR(summary->tenant_active_ratio.Mean(), (0.14 + 0.01) / 2, 1e-9);
  EXPECT_TRUE(summary->active_ratio_by_size.empty());
}

TEST(StatisticsTest, PerSizeAggregationNeedsSpecs) {
  std::vector<TenantLog> logs = {MakeLog()};
  std::vector<TenantSpec> specs(1);
  specs[0].id = 7;
  specs[0].requested_nodes = 4;
  auto summary = SummarizeWorkload(logs, 0, 1000 * kSecond, &specs);
  ASSERT_TRUE(summary.ok());
  ASSERT_EQ(summary->active_ratio_by_size.size(), 1u);
  EXPECT_NEAR(summary->active_ratio_by_size.at(4).Mean(), 0.14, 1e-9);

  // Missing spec is an error.
  specs[0].id = 99;
  EXPECT_FALSE(SummarizeWorkload(logs, 0, 1000 * kSecond, &specs).ok());
}

TEST(StatisticsTest, PrintMentionsKeyNumbers) {
  std::vector<TenantLog> logs = {MakeLog()};
  std::vector<TenantSpec> specs(1);
  specs[0].id = 7;
  specs[0].requested_nodes = 4;
  auto summary = SummarizeWorkload(logs, 0, 1000 * kSecond, &specs);
  ASSERT_TRUE(summary.ok());
  std::ostringstream os;
  PrintWorkloadSummary(*summary, os);
  EXPECT_NE(os.str().find("4 queries"), std::string::npos);
  EXPECT_NE(os.str().find("4-node"), std::string::npos);
  EXPECT_NE(os.str().find("14.0%"), std::string::npos);
}

}  // namespace
}  // namespace thrifty
