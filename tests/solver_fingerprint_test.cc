// Regression lock for the streamed epochization rollout: the grouping
// solvers must produce *identical* solutions whether their activity vectors
// were built through the legacy dense bitmap (IntervalsToBitmap +
// FromBitmap) or streamed straight to sparse words (EpochizeIntervals).
// This is the same guarantee bench_solver_scaling's committed fingerprints
// rest on — the streamed path must be a pure representation change, never a
// behavioural one — checked here group-by-group and as an FNV-1a
// fingerprint over the canonical solution encoding, for the two-step
// heuristic at several solver_jobs values and for the exact solver.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/thrifty.h"

namespace thrifty {
namespace {

/// Synthetic office-hour-ish tenants: bursty activity intervals over a
/// two-hour horizon, all derived from id-keyed Rng forks.
struct SyntheticWorkload {
  std::vector<TenantSpec> tenants;
  std::vector<IntervalSet> activity;
  EpochConfig epochs;
};

SyntheticWorkload MakeSyntheticWorkload(size_t num_tenants, uint64_t seed) {
  SyntheticWorkload w;
  w.epochs = EpochConfig{kSecond, 0, 2 * kHour};
  Rng base(seed);
  for (TenantId id = 0; id < static_cast<TenantId>(num_tenants); ++id) {
    Rng rng = base.Fork(static_cast<uint64_t>(id));
    TenantSpec spec;
    spec.id = id;
    spec.requested_nodes = static_cast<int>(1 + rng.NextBounded(4));
    spec.data_gb = 100.0 * spec.requested_nodes;
    w.tenants.push_back(spec);

    IntervalSet activity;
    const int bursts = static_cast<int>(2 + rng.NextBounded(8));
    for (int b = 0; b < bursts; ++b) {
      SimTime begin = rng.NextInt(0, 2 * kHour - kMinute);
      activity.Add(begin, begin + rng.NextInt(kSecond / 2, 5 * kMinute));
    }
    w.activity.push_back(std::move(activity));
  }
  return w;
}

std::vector<ActivityVector> BuildDense(const SyntheticWorkload& w) {
  std::vector<ActivityVector> out;
  for (size_t i = 0; i < w.activity.size(); ++i) {
    out.push_back(ActivityVector::FromBitmap(
        w.tenants[i].id, IntervalsToBitmap(w.activity[i], w.epochs)));
  }
  return out;
}

std::vector<ActivityVector> BuildStreamed(const SyntheticWorkload& w) {
  std::vector<ActivityVector> out;
  for (size_t i = 0; i < w.activity.size(); ++i) {
    out.push_back(EpochizeIntervals(w.tenants[i].id, w.activity[i], w.epochs));
  }
  return out;
}

void ExpectVectorsIdentical(const std::vector<ActivityVector>& a,
                            const std::vector<ActivityVector>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tenant_id(), b[i].tenant_id()) << "tenant " << i;
    EXPECT_EQ(a[i].num_epochs(), b[i].num_epochs()) << "tenant " << i;
    EXPECT_EQ(a[i].word_indices(), b[i].word_indices()) << "tenant " << i;
    EXPECT_EQ(a[i].word_bits(), b[i].word_bits()) << "tenant " << i;
  }
}

/// Canonical solution encoding + FNV-1a 64, mirroring the bench fingerprint
/// idiom: groups in solver order, each as "max_nodes[id,id,...];".
uint64_t SolutionFingerprint(const GroupingSolution& solution) {
  std::string text;
  for (const TenantGroupResult& group : solution.groups) {
    text += std::to_string(group.max_nodes);
    text += '[';
    for (TenantId id : group.tenant_ids) {
      text += std::to_string(id);
      text += ',';
    }
    text += "];";
  }
  uint64_t hash = 1469598103934665603ULL;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

void ExpectSolutionsIdentical(const GroupingSolution& a,
                              const GroupingSolution& b) {
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (size_t g = 0; g < a.groups.size(); ++g) {
    EXPECT_EQ(a.groups[g].tenant_ids, b.groups[g].tenant_ids) << "group " << g;
    EXPECT_EQ(a.groups[g].max_nodes, b.groups[g].max_nodes) << "group " << g;
  }
  EXPECT_EQ(SolutionFingerprint(a), SolutionFingerprint(b));
}

TEST(SolverFingerprintTest, DenseAndStreamedVectorsAreIdentical) {
  SyntheticWorkload w = MakeSyntheticWorkload(40, 0x51CA);
  ExpectVectorsIdentical(BuildDense(w), BuildStreamed(w));
}

TEST(SolverFingerprintTest, TwoStepIdenticalAcrossBuildPathAndJobs) {
  SyntheticWorkload w = MakeSyntheticWorkload(40, 0x51CA);
  std::vector<ActivityVector> dense = BuildDense(w);
  std::vector<ActivityVector> streamed = BuildStreamed(w);

  auto dense_problem = MakePackingProblem(w.tenants, dense, 3, 0.999);
  auto streamed_problem = MakePackingProblem(w.tenants, streamed, 3, 0.999);
  ASSERT_TRUE(dense_problem.ok()) << dense_problem.status().message();
  ASSERT_TRUE(streamed_problem.ok()) << streamed_problem.status().message();

  // Reference: dense vectors, serial solve.
  TwoStepOptions serial;
  auto reference = SolveTwoStep(*dense_problem, serial);
  ASSERT_TRUE(reference.ok()) << reference.status().message();
  ASSERT_FALSE(reference->groups.empty());
  const uint64_t reference_fp = SolutionFingerprint(*reference);

  for (int jobs : {1, 2, 4}) {
    SCOPED_TRACE("solver_jobs=" + std::to_string(jobs));
    TwoStepOptions options;
    options.solver_jobs = jobs;
    auto from_dense = SolveTwoStep(*dense_problem, options);
    auto from_streamed = SolveTwoStep(*streamed_problem, options);
    ASSERT_TRUE(from_dense.ok()) << from_dense.status().message();
    ASSERT_TRUE(from_streamed.ok()) << from_streamed.status().message();
    ExpectSolutionsIdentical(*from_dense, *reference);
    ExpectSolutionsIdentical(*from_streamed, *reference);
    EXPECT_EQ(SolutionFingerprint(*from_streamed), reference_fp);
  }
}

TEST(SolverFingerprintTest, ExactIdenticalAcrossBuildPath) {
  // The exact solver only scales to ~a dozen tenants; a small instance
  // still exercises the full branch-and-bound over both vector builds.
  SyntheticWorkload w = MakeSyntheticWorkload(9, 0xBEE5);
  std::vector<ActivityVector> dense = BuildDense(w);
  std::vector<ActivityVector> streamed = BuildStreamed(w);
  ExpectVectorsIdentical(dense, streamed);

  auto dense_problem = MakePackingProblem(w.tenants, dense, 2, 0.99);
  auto streamed_problem = MakePackingProblem(w.tenants, streamed, 2, 0.99);
  ASSERT_TRUE(dense_problem.ok()) << dense_problem.status().message();
  ASSERT_TRUE(streamed_problem.ok()) << streamed_problem.status().message();

  auto from_dense = SolveExact(*dense_problem);
  auto from_streamed = SolveExact(*streamed_problem);
  ASSERT_TRUE(from_dense.ok()) << from_dense.status().message();
  ASSERT_TRUE(from_streamed.ok()) << from_streamed.status().message();
  ExpectSolutionsIdentical(*from_dense, *from_streamed);
}

}  // namespace
}  // namespace thrifty
