#include "common/table_printer.h"

#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "common/sim_time.h"

namespace thrifty {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer-name", "22"});
  std::ostringstream os;
  table.Print(os);
  std::string out = os.str();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("| name        | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer-name | 22    |"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"only"});
  std::ostringstream os;
  table.Print(os);
  EXPECT_NE(os.str().find("| only |"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(FormatTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.0, 0), "3");
  EXPECT_EQ(FormatDouble(-1.5, 1), "-1.5");
}

TEST(FormatTest, FormatPercent) {
  EXPECT_EQ(FormatPercent(0.813, 1), "81.3%");
  EXPECT_EQ(FormatPercent(0.9999, 2), "99.99%");
  EXPECT_EQ(FormatPercent(1.0, 0), "100%");
}

TEST(FormatTest, FormatSimTime) {
  EXPECT_EQ(FormatSimTime(0), "0d 00:00:00.000");
  EXPECT_EQ(FormatSimTime(kDay + 2 * kHour + 3 * kMinute + 4 * kSecond + 5),
            "1d 02:03:04.005");
  EXPECT_EQ(FormatSimTime(-kHour), "-0d 01:00:00.000");
}

}  // namespace
}  // namespace thrifty
