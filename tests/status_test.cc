#include "common/status.h"

#include <sstream>

#include <gtest/gtest.h>

#include "common/result.h"

namespace thrifty {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::CapacityExceeded("x").code(),
            StatusCode::kCapacityExceeded);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  Status st = Status::NotFound("tenant 42");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "tenant 42");
  EXPECT_EQ(st.ToString(), "Not found: tenant 42");
}

TEST(StatusTest, StreamOperatorMatchesToString) {
  std::ostringstream os;
  os << Status::Internal("boom");
  EXPECT_EQ(os.str(), "Internal: boom");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    THRIFTY_RETURN_NOT_OK(Status::NotFound("inner"));
    return Status::Internal("unreachable");
  };
  EXPECT_EQ(fails().code(), StatusCode::kNotFound);
  auto succeeds = []() -> Status {
    THRIFTY_RETURN_NOT_OK(Status::OK());
    return Status::Internal("reached");
  };
  EXPECT_EQ(succeeds().code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::Unavailable("down");
    return 7;
  };
  auto outer = [&](bool fail) -> Result<int> {
    int v = 0;
    THRIFTY_ASSIGN_OR_RETURN(v, inner(fail));
    return v + 1;
  };
  ASSERT_TRUE(outer(false).ok());
  EXPECT_EQ(*outer(false), 8);
  EXPECT_EQ(outer(true).status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace thrifty
