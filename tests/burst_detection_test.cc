#include "activity/burst_detection.h"

#include <gtest/gtest.h>

namespace thrifty {
namespace {

BurstDetectorOptions WeeklyOptions() {
  BurstDetectorOptions options;
  options.period = 7 * kDay;
  options.bin_size = 6 * kHour;
  options.burst_factor = 3.0;
  options.min_burst_ratio = 0.5;
  options.recurrence_fraction = 0.8;
  options.min_periods = 2;
  return options;
}

TEST(BurstDetectionTest, QuietTenantHasNoBursts) {
  IntervalSet activity;
  // One 30-minute blip per day — well under the 50% bin threshold.
  for (int d = 0; d < 28; ++d) {
    activity.Add(d * kDay + 9 * kHour, d * kDay + 9 * kHour + 30 * kMinute);
  }
  auto report = DetectRegularBursts(activity, 0, 28 * kDay, WeeklyOptions());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->HasRegularBursts());
  EXPECT_NEAR(report->baseline_ratio, 0.5 / 24, 1e-6);
}

TEST(BurstDetectionTest, WeeklyBurstDetectedWithCorrectPhase) {
  IntervalSet activity;
  // Every Friday (day 4 of the period), 12:00-18:00 fully active, for four
  // weeks; plus light background noise.
  for (int w = 0; w < 4; ++w) {
    SimTime friday = w * 7 * kDay + 4 * kDay;
    activity.Add(friday + 12 * kHour, friday + 18 * kHour);
  }
  auto report = DetectRegularBursts(activity, 0, 28 * kDay, WeeklyOptions());
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->windows.size(), 1u);
  const BurstWindow& window = report->windows[0];
  EXPECT_EQ(window.phase_begin, 4 * kDay + 12 * kHour);
  EXPECT_EQ(window.phase_end, 4 * kDay + 18 * kHour);
  EXPECT_NEAR(window.mean_ratio, 1.0, 1e-9);
}

TEST(BurstDetectionTest, IrregularBurstIsNotRegular) {
  IntervalSet activity;
  // A heavy block in week 2 only.
  activity.Add(7 * kDay + 2 * kDay, 7 * kDay + 2 * kDay + 12 * kHour);
  auto report = DetectRegularBursts(activity, 0, 28 * kDay, WeeklyOptions());
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->HasRegularBursts());
}

TEST(BurstDetectionTest, RecurrenceFractionToleratesOneMiss) {
  IntervalSet activity;
  // Burst in 4 of 5 weeks (80% recurrence, exactly the threshold).
  for (int w = 0; w < 5; ++w) {
    if (w == 2) continue;
    SimTime monday = w * 7 * kDay;
    activity.Add(monday + 6 * kHour, monday + 12 * kHour);
  }
  auto report = DetectRegularBursts(activity, 0, 35 * kDay, WeeklyOptions());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->HasRegularBursts());
}

TEST(BurstDetectionTest, NextOccurrencePrediction) {
  BurstWindow window;
  window.phase_begin = 4 * kDay;
  window.phase_end = 4 * kDay + 6 * kHour;
  SimDuration period = 7 * kDay;
  // From day 2 of week 3, the next burst is day 4 of week 3.
  TimeInterval next = window.NextOccurrence(2 * 7 * kDay + 2 * kDay, period);
  EXPECT_EQ(next.begin, 2 * 7 * kDay + 4 * kDay);
  EXPECT_EQ(next.end, 2 * 7 * kDay + 4 * kDay + 6 * kHour);
  // From inside the window, the current occurrence is returned.
  TimeInterval current =
      window.NextOccurrence(2 * 7 * kDay + 4 * kDay + kHour, period);
  EXPECT_EQ(current.begin, 2 * 7 * kDay + 4 * kDay);
  // Just past it, next week's.
  TimeInterval after = window.NextOccurrence(
      2 * 7 * kDay + 4 * kDay + 6 * kHour, period);
  EXPECT_EQ(after.begin, 3 * 7 * kDay + 4 * kDay);
}

TEST(BurstDetectionTest, InPredictedBurst) {
  BurstReport report;
  BurstWindow window;
  window.phase_begin = kDay;
  window.phase_end = kDay + 2 * kHour;
  report.windows.push_back(window);
  SimDuration period = 7 * kDay;
  EXPECT_TRUE(InPredictedBurst(report, 7 * kDay + kDay + kHour, period));
  EXPECT_FALSE(InPredictedBurst(report, 7 * kDay + 2 * kDay, period));
  EXPECT_FALSE(InPredictedBurst(BurstReport{}, kDay, period));
}

TEST(BurstDetectionTest, ValidatesInputs) {
  IntervalSet activity;
  activity.Add(0, kDay);
  BurstDetectorOptions options = WeeklyOptions();
  // Too little history.
  EXPECT_EQ(DetectRegularBursts(activity, 0, 10 * kDay, options)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  // Bin size not dividing the period.
  options.bin_size = 5 * kHour;
  EXPECT_EQ(DetectRegularBursts(activity, 0, 28 * kDay, options)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  options = WeeklyOptions();
  options.period = 0;
  EXPECT_FALSE(DetectRegularBursts(activity, 0, 28 * kDay, options).ok());
  EXPECT_FALSE(DetectRegularBursts(activity, kDay, kDay, WeeklyOptions())
                   .ok());
}

TEST(BurstDetectionTest, PartialTrailingPeriodIgnored) {
  IntervalSet activity;
  for (int w = 0; w < 3; ++w) {
    SimTime monday = w * 7 * kDay;
    activity.Add(monday, monday + 6 * kHour);
  }
  // A huge blip in the trailing partial week must not affect detection.
  activity.Add(3 * 7 * kDay + kDay, 3 * 7 * kDay + 2 * kDay);
  auto report =
      DetectRegularBursts(activity, 0, 3 * 7 * kDay + 3 * kDay,
                          WeeklyOptions());
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->windows.size(), 1u);
  EXPECT_EQ(report->windows[0].phase_begin, 0);
}

}  // namespace
}  // namespace thrifty
