#include "activity/activity_monitor.h"

#include <vector>

#include <gtest/gtest.h>

namespace thrifty {
namespace {

TEST(TrackerTest, ActiveWhileQueriesRun) {
  TenantActivityTracker tracker;
  EXPECT_FALSE(tracker.IsActive(1));
  tracker.OnQueryStart(1, 100);
  EXPECT_TRUE(tracker.IsActive(1));
  EXPECT_EQ(tracker.RunningQueries(1), 1);
  tracker.OnQueryStart(1, 150);
  EXPECT_EQ(tracker.RunningQueries(1), 2);
  ASSERT_TRUE(tracker.OnQueryFinish(1, 200).ok());
  EXPECT_TRUE(tracker.IsActive(1));  // one query still running
  ASSERT_TRUE(tracker.OnQueryFinish(1, 300).ok());
  EXPECT_FALSE(tracker.IsActive(1));
}

TEST(TrackerTest, FinishWithoutStartFails) {
  TenantActivityTracker tracker;
  EXPECT_EQ(tracker.OnQueryFinish(1, 10).code(),
            StatusCode::kFailedPrecondition);
  tracker.OnQueryStart(1, 10);
  ASSERT_TRUE(tracker.OnQueryFinish(1, 20).ok());
  EXPECT_EQ(tracker.OnQueryFinish(1, 30).code(),
            StatusCode::kFailedPrecondition);
}

TEST(TrackerTest, TransitionsFireOnBoundaryOnly) {
  TenantActivityTracker tracker;
  std::vector<std::pair<bool, SimTime>> transitions;
  tracker.set_transition_callback(
      [&](TenantId tenant, bool active, SimTime now) {
        EXPECT_EQ(tenant, 7);
        transitions.push_back({active, now});
      });
  tracker.OnQueryStart(7, 100);
  tracker.OnQueryStart(7, 110);  // no transition: already active
  ASSERT_TRUE(tracker.OnQueryFinish(7, 120).ok());
  ASSERT_TRUE(tracker.OnQueryFinish(7, 130).ok());
  tracker.OnQueryStart(7, 200);
  ASSERT_TRUE(tracker.OnQueryFinish(7, 210).ok());
  ASSERT_EQ(transitions.size(), 4u);
  EXPECT_EQ(transitions[0], (std::pair<bool, SimTime>{true, 100}));
  EXPECT_EQ(transitions[1], (std::pair<bool, SimTime>{false, 130}));
  EXPECT_EQ(transitions[2], (std::pair<bool, SimTime>{true, 200}));
  EXPECT_EQ(transitions[3], (std::pair<bool, SimTime>{false, 210}));
}

TEST(TrackerTest, HistoryRecordsClosedIntervals) {
  TenantActivityTracker tracker;
  tracker.OnQueryStart(1, 100);
  ASSERT_TRUE(tracker.OnQueryFinish(1, 200).ok());
  tracker.OnQueryStart(1, 300);
  ASSERT_TRUE(tracker.OnQueryFinish(1, 350).ok());
  IntervalSet history = tracker.ActivityHistory(1, 0, 1000);
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history.intervals()[0], (TimeInterval{100, 200}));
  EXPECT_EQ(history.intervals()[1], (TimeInterval{300, 350}));
  EXPECT_DOUBLE_EQ(tracker.ActiveRatio(1, 0, 1000), 0.15);
}

TEST(TrackerTest, OpenIntervalClosedAtWindowEnd) {
  TenantActivityTracker tracker;
  tracker.OnQueryStart(1, 100);
  IntervalSet history = tracker.ActivityHistory(1, 0, 500);
  ASSERT_EQ(history.size(), 1u);
  EXPECT_EQ(history.intervals()[0], (TimeInterval{100, 500}));
}

TEST(TrackerTest, UnknownTenantHasEmptyHistory) {
  TenantActivityTracker tracker;
  EXPECT_TRUE(tracker.ActivityHistory(42, 0, 100).empty());
  EXPECT_EQ(tracker.ActiveRatio(42, 0, 100), 0);
  EXPECT_EQ(tracker.RunningQueries(42), 0);
}

TEST(TrackerTest, HistoryClipsToWindow) {
  TenantActivityTracker tracker;
  tracker.OnQueryStart(1, 100);
  ASSERT_TRUE(tracker.OnQueryFinish(1, 400).ok());
  IntervalSet history = tracker.ActivityHistory(1, 200, 300);
  ASSERT_EQ(history.size(), 1u);
  EXPECT_EQ(history.intervals()[0], (TimeInterval{200, 300}));
}

TEST(TrackerTest, RetentionPrunesOldHistory) {
  TenantActivityTracker tracker(/*history_retention=*/1000);
  tracker.OnQueryStart(1, 0);
  ASSERT_TRUE(tracker.OnQueryFinish(1, 10).ok());
  // Far in the future: pruning occurs on the transition to inactive.
  tracker.OnQueryStart(1, 5000);
  ASSERT_TRUE(tracker.OnQueryFinish(1, 5010).ok());
  IntervalSet history = tracker.ActivityHistory(1, 0, 6000);
  EXPECT_EQ(history.size(), 1u);  // the [0,10) interval was pruned
}

}  // namespace
}  // namespace thrifty
