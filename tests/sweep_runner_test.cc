#include "exp/sweep_runner.h"

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace thrifty {
namespace {

// A trial body with enough arithmetic that any ordering or stream mixup
// would change the merged numbers.
void RecordTrial(TrialContext& context, TrialRecorder& recorder) {
  RunningStats& latency = recorder.Stats("latency");
  Histogram& hist = recorder.Hist("normalized", 0.01, 1.02);
  for (int draw = 0; draw < 200; ++draw) {
    double v = context.rng.NextExponential(1.0 + 0.1 * static_cast<double>(
                                                       context.trial_index));
    latency.Add(v);
    hist.Add(v);
  }
  recorder.Stats("per_trial_mean").Add(latency.Mean());
}

TrialRecorder RunSweep(int jobs) {
  SweepRunner runner({jobs, /*seed=*/1234});
  return runner.Run(16, RecordTrial);
}

TEST(SweepRunnerTest, MergedStatsBitIdenticalAcrossJobCounts) {
  TrialRecorder serial = RunSweep(1);
  TrialRecorder parallel = RunSweep(4);
  TrialRecorder oversubscribed = RunSweep(32);  // more workers than trials

  for (const TrialRecorder* other : {&parallel, &oversubscribed}) {
    const RunningStats& a = serial.stats().at("latency");
    const RunningStats& b = other->stats().at("latency");
    EXPECT_EQ(a.count(), b.count());
    // Bit-identical, not approximately equal: merge order is trial order
    // regardless of completion order, so every intermediate rounding step
    // is the same.
    EXPECT_EQ(a.Mean(), b.Mean());
    EXPECT_EQ(a.Variance(), b.Variance());
    EXPECT_EQ(a.min(), b.min());
    EXPECT_EQ(a.max(), b.max());
    EXPECT_EQ(serial.stats().at("per_trial_mean").Mean(),
              other->stats().at("per_trial_mean").Mean());
    const Histogram& ha = serial.hists().at("normalized");
    const Histogram& hb = other->hists().at("normalized");
    EXPECT_EQ(ha.count(), hb.count());
    EXPECT_EQ(ha.sum(), hb.sum());
    EXPECT_EQ(ha.Percentile(0.5), hb.Percentile(0.5));
    EXPECT_EQ(ha.Percentile(0.999), hb.Percentile(0.999));
    EXPECT_EQ(ha.FractionAtMost(1.0), hb.FractionAtMost(1.0));
  }
}

TEST(SweepRunnerTest, MapReturnsResultsInTrialOrder) {
  SweepRunner runner({4, 7});
  std::vector<size_t> indices = runner.Map<size_t>(
      16, [](TrialContext& context) { return context.trial_index; });
  for (size_t i = 0; i < indices.size(); ++i) EXPECT_EQ(indices[i], i);
}

TEST(SweepRunnerTest, ThrowingTrialSurfacesWithoutDeadlock) {
  SweepRunner runner({4, 42});
  std::atomic<int> completed{0};
  auto body = [&completed](TrialContext& context) -> int {
    if (context.trial_index == 7 || context.trial_index == 11) {
      throw std::runtime_error(context.trial_index == 7 ? "trial 7"
                                                        : "trial 11");
    }
    ++completed;
    return 1;
  };
  try {
    runner.Map<int>(16, body);
    FAIL() << "expected the trial exception to propagate";
  } catch (const std::runtime_error& e) {
    // The lowest-indexed failure wins deterministically.
    EXPECT_STREQ(e.what(), "trial 7");
  }
  // Every non-throwing trial still ran: the pool drained instead of
  // deadlocking or abandoning queued work.
  EXPECT_EQ(completed.load(), 14);

  // And the runner remains usable afterwards.
  std::vector<int> ok = runner.Map<int>(4, [](TrialContext&) { return 3; });
  EXPECT_EQ(ok, (std::vector<int>{3, 3, 3, 3}));
}

TEST(SweepRunnerTest, TrialStreamsDependOnlyOnSeedAndIndex) {
  // Record each trial's first draws under three execution regimes; the
  // streams must match Rng(seed).Fork(index) exactly, independent of which
  // worker ran the trial or in what order.
  auto collect = [](int jobs, uint64_t seed) {
    SweepRunner runner({jobs, seed});
    return runner.Map<std::vector<uint64_t>>(
        16, [](TrialContext& context) {
          std::vector<uint64_t> draws;
          for (int i = 0; i < 4; ++i) draws.push_back(context.rng.Next());
          return draws;
        });
  };
  auto serial = collect(1, 99);
  auto parallel = collect(4, 99);
  auto chaotic = collect(16, 99);
  Rng root(99);
  for (size_t i = 0; i < 16; ++i) {
    Rng expected = root.Fork(i);
    for (int d = 0; d < 4; ++d) {
      uint64_t want = expected.Next();
      EXPECT_EQ(serial[i][static_cast<size_t>(d)], want);
      EXPECT_EQ(parallel[i][static_cast<size_t>(d)], want);
      EXPECT_EQ(chaotic[i][static_cast<size_t>(d)], want);
    }
  }
  // Distinct trials get distinct streams.
  EXPECT_NE(serial[0], serial[1]);
  // Distinct seeds get distinct streams.
  EXPECT_NE(collect(1, 100)[0], serial[0]);
}

TEST(SweepRunnerTest, RecorderMergeHandlesDisjointNames) {
  SweepRunner runner({2, 5});
  TrialRecorder merged = runner.Run(4, [](TrialContext& context,
                                          TrialRecorder& recorder) {
    if (context.trial_index % 2 == 0) {
      recorder.Stats("even").Add(static_cast<double>(context.trial_index));
      recorder.Hist("even_hist").Add(1.0);
    } else {
      recorder.Stats("odd").Add(static_cast<double>(context.trial_index));
    }
  });
  EXPECT_EQ(merged.stats().at("even").count(), 2u);
  EXPECT_EQ(merged.stats().at("odd").count(), 2u);
  EXPECT_EQ(merged.hists().at("even_hist").count(), 2u);
  EXPECT_DOUBLE_EQ(merged.stats().at("odd").Mean(), 2.0);
}

}  // namespace
}  // namespace thrifty
