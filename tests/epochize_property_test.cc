// Randomized equivalence harness for the streamed epochization engine:
// StreamedEpochizer / ForEachActivityWord / EpochizeIntervals must produce
// exactly the nonzero words of the dense reference discretization
// (IntervalsToBitmap) over generated interval sets — word-boundary
// straddles, zero-length and adjacent intervals, intervals touching
// EpochConfig::end, and single-epoch grids included. Every randomized case
// derives its generator from an id-keyed Rng fork, so a failure names the
// case id and replays deterministically.

#include "activity/streamed_epochizer.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace thrifty {
namespace {

struct Words {
  std::vector<uint32_t> indices;
  std::vector<uint64_t> bits;

  bool operator==(const Words& other) const = default;
};

Words DenseWords(const IntervalSet& set, const EpochConfig& epochs) {
  DynamicBitmap dense = IntervalsToBitmap(set, epochs);
  Words words;
  for (size_t w = 0; w < dense.num_words(); ++w) {
    if (dense.word(w) != 0) {
      words.indices.push_back(static_cast<uint32_t>(w));
      words.bits.push_back(dense.word(w));
    }
  }
  return words;
}

Words IteratorWords(const IntervalSet& set, const EpochConfig& epochs) {
  Words words;
  StreamedEpochizer stream(set, epochs);
  uint32_t index;
  uint64_t bits;
  while (stream.Next(&index, &bits)) {
    words.indices.push_back(index);
    words.bits.push_back(bits);
  }
  return words;
}

Words CallbackWords(const IntervalSet& set, const EpochConfig& epochs) {
  Words words;
  ForEachActivityWord(set, epochs, [&](uint32_t index, uint64_t bits) {
    words.indices.push_back(index);
    words.bits.push_back(bits);
  });
  return words;
}

/// Asserts the full streamed/dense contract for one (set, grid) pair.
void ExpectStreamedMatchesDense(const IntervalSet& set,
                                const EpochConfig& epochs) {
  const Words expected = DenseWords(set, epochs);
  EXPECT_EQ(IteratorWords(set, epochs), expected);
  EXPECT_EQ(CallbackWords(set, epochs), expected);

  const ActivityVector streamed = EpochizeIntervals(7, set, epochs);
  const ActivityVector reference =
      ActivityVector::FromBitmap(7, IntervalsToBitmap(set, epochs));
  EXPECT_EQ(streamed.tenant_id(), reference.tenant_id());
  EXPECT_EQ(streamed.num_epochs(), reference.num_epochs());
  EXPECT_EQ(streamed.word_indices(), reference.word_indices());
  EXPECT_EQ(streamed.word_bits(), reference.word_bits());
  EXPECT_EQ(streamed.ActiveEpochs(), reference.ActiveEpochs());
}

TEST(StreamedEpochizerTest, EmptySetYieldsNoWords) {
  EpochConfig epochs{10 * kSecond, 0, 1000 * kSecond};
  IntervalSet set;
  EXPECT_TRUE(IteratorWords(set, epochs).indices.empty());
  ExpectStreamedMatchesDense(set, epochs);
}

TEST(StreamedEpochizerTest, WordBoundaryStraddle) {
  // One epoch per second over 130 epochs; an interval covering epochs
  // 62..65 must split across words 0 and 1 with the straddling bits exact.
  EpochConfig epochs{kSecond, 0, 130 * kSecond};
  IntervalSet set;
  set.Add(62 * kSecond, 66 * kSecond);
  Words words = IteratorWords(set, epochs);
  ASSERT_EQ(words.indices, (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(words.bits[0], (uint64_t{1} << 62) | (uint64_t{1} << 63));
  EXPECT_EQ(words.bits[1], uint64_t{1} | (uint64_t{1} << 1));
  ExpectStreamedMatchesDense(set, epochs);
}

TEST(StreamedEpochizerTest, AdjacentIntervalsMergeIntoOneWordRun) {
  // [10, 20) and [20, 30) coalesce in the IntervalSet; [40, 41) and
  // [41.5, 42) stay separate intervals but share epoch 4's word.
  EpochConfig epochs{10 * kSecond, 0, 640 * kSecond};
  IntervalSet set;
  set.Add(10 * kSecond, 20 * kSecond);
  set.Add(20 * kSecond, 30 * kSecond);
  set.Add(400 * kSecond, 410 * kSecond);
  set.Add(415 * kSecond, 420 * kSecond);
  Words words = IteratorWords(set, epochs);
  ASSERT_EQ(words.indices, (std::vector<uint32_t>{0}));
  EXPECT_EQ(words.bits[0], (uint64_t{1} << 1) | (uint64_t{1} << 2) |
                               (uint64_t{1} << 40) | (uint64_t{1} << 41));
  ExpectStreamedMatchesDense(set, epochs);
}

TEST(StreamedEpochizerTest, ZeroLengthIntervalsAreIgnored) {
  EpochConfig epochs{10 * kSecond, 0, 100 * kSecond};
  IntervalSet set;
  set.Add(30 * kSecond, 30 * kSecond);  // empty: dropped by IntervalSet
  set.Add(50 * kSecond, 51 * kSecond);
  Words words = IteratorWords(set, epochs);
  ASSERT_EQ(words.indices.size(), 1u);
  EXPECT_EQ(words.bits[0], uint64_t{1} << 5);
  ExpectStreamedMatchesDense(set, epochs);
}

TEST(StreamedEpochizerTest, IntervalsTouchingGridEnd) {
  EpochConfig epochs{10 * kSecond, 0, 95 * kSecond};
  {
    // Ends exactly at the (clamped) grid end: occupies the last epoch.
    IntervalSet set;
    set.Add(90 * kSecond, 95 * kSecond);
    Words words = IteratorWords(set, epochs);
    ASSERT_EQ(words.indices.size(), 1u);
    EXPECT_EQ(words.bits[0], uint64_t{1} << 9);
    ExpectStreamedMatchesDense(set, epochs);
  }
  {
    // Starts exactly at the grid end: contributes nothing.
    IntervalSet set;
    set.Add(95 * kSecond, 200 * kSecond);
    EXPECT_TRUE(IteratorWords(set, epochs).indices.empty());
    ExpectStreamedMatchesDense(set, epochs);
  }
  {
    // Straddles the end: clipped, and later intervals are ignored.
    IntervalSet set;
    set.Add(80 * kSecond, 300 * kSecond);
    set.Add(400 * kSecond, 500 * kSecond);
    Words words = IteratorWords(set, epochs);
    ASSERT_EQ(words.indices.size(), 1u);
    EXPECT_EQ(words.bits[0], (uint64_t{1} << 8) | (uint64_t{1} << 9));
    ExpectStreamedMatchesDense(set, epochs);
  }
}

TEST(StreamedEpochizerTest, SingleEpochGrid) {
  // Non-divisible single-epoch grid: every overlapping interval lands in
  // epoch 0, intervals outside contribute nothing.
  EpochConfig epochs{10 * kSecond, 0, 7 * kSecond};
  IntervalSet set;
  set.Add(-5 * kSecond, 1 * kSecond);
  set.Add(3 * kSecond, 4 * kSecond);
  Words words = IteratorWords(set, epochs);
  ASSERT_EQ(words.indices, (std::vector<uint32_t>{0}));
  EXPECT_EQ(words.bits[0], uint64_t{1});
  ExpectStreamedMatchesDense(set, epochs);
}

TEST(StreamedEpochizerTest, NonZeroGridBegin) {
  EpochConfig epochs{5 * kSecond, 100 * kSecond, 150 * kSecond};
  IntervalSet set;
  set.Add(0, 102 * kSecond);          // clipped at the front
  set.Add(148 * kSecond, 1 * kDay);   // clipped at the back
  Words words = IteratorWords(set, epochs);
  ASSERT_EQ(words.indices, (std::vector<uint32_t>{0}));
  EXPECT_EQ(words.bits[0], uint64_t{1} | (uint64_t{1} << 9));
  ExpectStreamedMatchesDense(set, epochs);
}

/// One randomized case: grid and interval population both derived from the
/// case-id-keyed fork, heavy on the adversarial shapes (word straddles,
/// boundary touches, zero-length adds, clusters of adjacent intervals).
void RunRandomizedCase(uint64_t case_id) {
  SCOPED_TRACE("case_id=" + std::to_string(case_id) +
               " (replay: Rng(0xE90C).Fork(case_id))");
  Rng rng = Rng(0xE90C).Fork(case_id);

  const SimDuration epoch_sizes[] = {1,           7,          100,
                                     kSecond,     kSecond / 2, 10 * kSecond};
  const SimDuration epoch_size =
      epoch_sizes[rng.NextBounded(sizeof(epoch_sizes) /
                                  sizeof(epoch_sizes[0]))];
  const SimTime begin = rng.NextBool(0.5) ? 0 : rng.NextInt(1, 1000);
  // Between a single epoch and several word-lengths of epochs, with a
  // non-divisible tail half the time.
  const size_t num_epochs = 1 + rng.NextBounded(300);
  SimTime end = begin + static_cast<SimTime>(num_epochs) * epoch_size;
  if (rng.NextBool(0.5) && epoch_size > 1) end -= rng.NextInt(1, epoch_size - 1);
  EpochConfig epochs{epoch_size, begin, end};
  ASSERT_TRUE(epochs.Valid());

  IntervalSet set;
  const int num_intervals = static_cast<int>(rng.NextBounded(40));
  for (int i = 0; i < num_intervals; ++i) {
    const SimTime span = end - begin;
    SimTime iv_begin = begin + rng.NextInt(-span / 4 - 1, span + span / 4);
    SimTime iv_end;
    switch (rng.NextBounded(5)) {
      case 0:  // zero-length
        iv_end = iv_begin;
        break;
      case 1:  // sub-epoch
        iv_end = iv_begin + rng.NextInt(0, epoch_size);
        break;
      case 2:  // multi-word run
        iv_end = iv_begin + rng.NextInt(0, 130 * epoch_size);
        break;
      case 3:  // touches the grid end exactly
        iv_end = end;
        break;
      default:  // a short cluster of adjacent intervals
        iv_end = iv_begin + rng.NextInt(1, 2 * epoch_size);
        set.Add(iv_begin, iv_end);
        iv_begin = iv_end;
        iv_end = iv_begin + rng.NextInt(1, 2 * epoch_size);
        break;
    }
    set.Add(iv_begin, iv_end);
  }
  ExpectStreamedMatchesDense(set, epochs);
}

TEST(StreamedEpochizerPropertyTest, RandomizedStreamedVsDense) {
  for (uint64_t case_id = 0; case_id < 400; ++case_id) {
    RunRandomizedCase(case_id);
    if (HasFatalFailure() || HasNonfatalFailure()) break;  // first repro only
  }
}

TEST(ActivityVectorFromWordsTest, AdoptsSparseStorage) {
  ActivityVector v = ActivityVector::FromWords(
      5, 200, {1, 3}, {uint64_t{1} << 2, uint64_t{0b101} << 60});
  EXPECT_EQ(v.tenant_id(), 5);
  EXPECT_EQ(v.num_epochs(), 200u);
  EXPECT_EQ(v.ActiveEpochs(), 3u);
  EXPECT_TRUE(v.Get(64 + 2));
  EXPECT_TRUE(v.Get(192 + 60));
  EXPECT_TRUE(v.Get(192 + 62));
  EXPECT_FALSE(v.Get(0));
}

}  // namespace
}  // namespace thrifty
