#include "mppdb/instance.h"

#include <vector>

#include <gtest/gtest.h>

#include "mppdb/query_model.h"
#include "sim/engine.h"

namespace thrifty {
namespace {

QueryTemplate MakeTemplate(double work_seconds_per_gb, double serial = 0.0) {
  QueryTemplate t;
  t.id = 1;
  t.name = "q";
  t.work_seconds_per_gb = work_seconds_per_gb;
  t.serial_fraction = serial;
  return t;
}

class InstanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    instance_ = std::make_unique<MppdbInstance>(0, 4, &engine_);
    instance_->AddTenant(1, 100);
    instance_->AddTenant(2, 100);
    instance_->set_completion_callback(
        [this](const QueryCompletion& c) { completions_.push_back(c); });
  }

  Status Submit(QueryId qid, TenantId tenant, const QueryTemplate& tmpl,
                SimDuration reference = 0) {
    QuerySubmission s;
    s.query_id = qid;
    s.tenant_id = tenant;
    s.template_id = tmpl.id;
    s.reference_latency = reference;
    return instance_->Submit(s, tmpl);
  }

  SimEngine engine_;
  std::unique_ptr<MppdbInstance> instance_;
  std::vector<QueryCompletion> completions_;
};

TEST_F(InstanceTest, SingleQueryCompletesAtDedicatedLatency) {
  QueryTemplate t = MakeTemplate(1.0);  // 100 GB on 4 nodes -> 25 s
  ASSERT_TRUE(Submit(10, 1, t).ok());
  engine_.Run();
  ASSERT_EQ(completions_.size(), 1u);
  EXPECT_EQ(completions_[0].query_id, 10);
  EXPECT_EQ(completions_[0].MeasuredLatency(), 25 * kSecond);
  EXPECT_EQ(completions_[0].dedicated_latency, 25 * kSecond);
  EXPECT_EQ(completions_[0].max_concurrency, 1);
}

TEST_F(InstanceTest, TwoConcurrentQueriesRunTwiceSlower) {
  // The Fig 1.1a 2T-CON behaviour.
  QueryTemplate t = MakeTemplate(1.0);
  ASSERT_TRUE(Submit(1, 1, t).ok());
  ASSERT_TRUE(Submit(2, 2, t).ok());
  engine_.Run();
  ASSERT_EQ(completions_.size(), 2u);
  for (const auto& c : completions_) {
    EXPECT_EQ(c.MeasuredLatency(), 50 * kSecond);
    EXPECT_EQ(c.max_concurrency, 2);
  }
}

TEST_F(InstanceTest, SequentialQueriesUnaffected) {
  // The Fig 1.1a xT-SEQ behaviour: one after another = dedicated speed.
  QueryTemplate t = MakeTemplate(1.0);
  ASSERT_TRUE(Submit(1, 1, t).ok());
  engine_.Run();
  ASSERT_TRUE(Submit(2, 2, t).ok());
  engine_.Run();
  ASSERT_EQ(completions_.size(), 2u);
  EXPECT_EQ(completions_[0].MeasuredLatency(), 25 * kSecond);
  EXPECT_EQ(completions_[1].MeasuredLatency(), 25 * kSecond);
}

TEST_F(InstanceTest, StaggeredArrivalProcessorSharing) {
  // A (100 s alone) starts at 0; B (100 s alone) starts at 50 s.
  // A runs alone for 50 s (half done), then shares: 50 s of work left at
  // rate 1/2 -> finishes at t = 150 s. B then runs alone with 50 s left ->
  // finishes at t = 200 s.
  QueryTemplate t = MakeTemplate(4.0);  // 400 s on 1 node, 100 s on 4.
  ASSERT_TRUE(Submit(1, 1, t).ok());
  engine_.ScheduleAt(50 * kSecond, [&](SimTime) {
    ASSERT_TRUE(Submit(2, 2, t).ok());
  });
  engine_.Run();
  ASSERT_EQ(completions_.size(), 2u);
  EXPECT_EQ(completions_[0].query_id, 1);
  EXPECT_EQ(completions_[0].finish_time, 150 * kSecond);
  EXPECT_EQ(completions_[1].query_id, 2);
  EXPECT_EQ(completions_[1].finish_time, 200 * kSecond);
}

TEST_F(InstanceTest, WorkIsConservedUnderSharing) {
  // Total completion time of k simultaneous equal queries = k x dedicated.
  QueryTemplate t = MakeTemplate(1.0);
  for (QueryId q = 0; q < 5; ++q) {
    ASSERT_TRUE(Submit(q, 1, t).ok());
  }
  engine_.Run();
  ASSERT_EQ(completions_.size(), 5u);
  for (const auto& c : completions_) {
    EXPECT_EQ(c.finish_time, 5 * 25 * kSecond);
  }
}

TEST_F(InstanceTest, BusyAndServingState) {
  QueryTemplate t = MakeTemplate(1.0);
  EXPECT_TRUE(instance_->IsFree());
  EXPECT_FALSE(instance_->IsServingTenant(1));
  ASSERT_TRUE(Submit(1, 1, t).ok());
  EXPECT_FALSE(instance_->IsFree());
  EXPECT_TRUE(instance_->IsServingTenant(1));
  EXPECT_FALSE(instance_->IsServingTenant(2));
  EXPECT_EQ(instance_->Concurrency(), 1);
  ASSERT_TRUE(Submit(2, 1, t).ok());
  EXPECT_EQ(instance_->Concurrency(), 2);
  EXPECT_EQ(instance_->ActiveTenantCount(), 1);
  ASSERT_TRUE(Submit(3, 2, t).ok());
  EXPECT_EQ(instance_->ActiveTenantCount(), 2);
  engine_.Run();
  EXPECT_TRUE(instance_->IsFree());
  EXPECT_EQ(instance_->completed_queries(), 3u);
}

TEST_F(InstanceTest, SubmitFailsWhenNotOnline) {
  instance_->SetState(InstanceState::kLoading);
  QueryTemplate t = MakeTemplate(1.0);
  Status st = Submit(1, 1, t);
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
}

TEST_F(InstanceTest, SubmitFailsForUnknownTenant) {
  QueryTemplate t = MakeTemplate(1.0);
  EXPECT_EQ(Submit(1, 99, t).code(), StatusCode::kNotFound);
}

TEST_F(InstanceTest, RemoveTenantBlockedWhileServing) {
  QueryTemplate t = MakeTemplate(1.0);
  ASSERT_TRUE(Submit(1, 1, t).ok());
  EXPECT_EQ(instance_->RemoveTenant(1).code(),
            StatusCode::kFailedPrecondition);
  engine_.Run();
  EXPECT_TRUE(instance_->RemoveTenant(1).ok());
  EXPECT_FALSE(instance_->HostsTenant(1));
  EXPECT_EQ(instance_->RemoveTenant(1).code(), StatusCode::kNotFound);
}

TEST_F(InstanceTest, NodeFailureSlowsExecution) {
  QueryTemplate t = MakeTemplate(1.0);  // 25 s dedicated on 4 healthy nodes
  ASSERT_TRUE(instance_->InjectNodeFailure().ok());  // 3/4 speed
  ASSERT_TRUE(Submit(1, 1, t).ok());
  engine_.Run();
  ASSERT_EQ(completions_.size(), 1u);
  // 25 s of work at 0.75 speed = 33.333 s (ceil to ms).
  EXPECT_NEAR(static_cast<double>(completions_[0].MeasuredLatency()),
              25000.0 / 0.75, 2.0);
}

TEST_F(InstanceTest, RepairRestoresSpeedMidQuery) {
  QueryTemplate t = MakeTemplate(4.0);  // 100 s dedicated
  ASSERT_TRUE(instance_->InjectNodeFailure().ok());  // 0.75 speed
  ASSERT_TRUE(Submit(1, 1, t).ok());
  engine_.ScheduleAt(30 * kSecond, [&](SimTime) {
    ASSERT_TRUE(instance_->RepairNode().ok());
  });
  engine_.Run();
  // 30 s at 0.75 speed = 22.5 s progressed; 77.5 s left at full speed.
  ASSERT_EQ(completions_.size(), 1u);
  EXPECT_NEAR(static_cast<double>(completions_[0].MeasuredLatency()),
              (30 + 77.5) * 1000, 2.0);
}

TEST_F(InstanceTest, CannotFailAllNodes) {
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(instance_->InjectNodeFailure().ok());
  }
  EXPECT_EQ(instance_->InjectNodeFailure().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(instance_->failed_nodes(), 3);
}

TEST_F(InstanceTest, RepairWithoutFailureFails) {
  EXPECT_EQ(instance_->RepairNode().code(), StatusCode::kFailedPrecondition);
}

TEST_F(InstanceTest, NormalizedPerformanceUsesReference) {
  QueryTemplate t = MakeTemplate(1.0);  // 25 s on this 4-node instance
  ASSERT_TRUE(Submit(1, 1, t, /*reference=*/50 * kSecond).ok());
  ASSERT_TRUE(Submit(2, 2, t, /*reference=*/50 * kSecond).ok());
  engine_.Run();
  ASSERT_EQ(completions_.size(), 2u);
  // Concurrent: each took 50 s; reference 50 s -> exactly at SLA.
  EXPECT_NEAR(completions_[0].NormalizedPerformance(), 1.0, 1e-6);
}

TEST_F(InstanceTest, BusyTimeAccumulates) {
  QueryTemplate t = MakeTemplate(1.0);
  ASSERT_TRUE(Submit(1, 1, t).ok());
  engine_.Run();  // busy 25 s
  engine_.ScheduleAt(100 * kSecond, [&](SimTime) {
    ASSERT_TRUE(Submit(2, 1, t).ok());
  });
  engine_.Run();  // busy another 25 s
  EXPECT_EQ(instance_->busy_time(), 50 * kSecond);
}

TEST_F(InstanceTest, TotalDataTracksTenants) {
  EXPECT_DOUBLE_EQ(instance_->TotalDataGb(), 200);
  instance_->AddTenant(3, 50);
  EXPECT_DOUBLE_EQ(instance_->TotalDataGb(), 250);
  EXPECT_DOUBLE_EQ(instance_->TenantDataGb(3), 50);
  EXPECT_DOUBLE_EQ(instance_->TenantDataGb(99), 0);
}

}  // namespace
}  // namespace thrifty
