// Panel-by-panel golden test of Figure 5.3: every percentage transition the
// paper's worked example prints, asserted exactly against the level-set
// algebra and the candidate criterion. (The end-to-end insertion order is
// covered in two_step_test; this file pins the intermediate numbers.)

#include <vector>

#include <gtest/gtest.h>

#include <memory>

#include "activity/level_set.h"
#include "fig51_fixture.h"
#include "placement/two_step.h"
#include "routing/query_router.h"
#include "sim/engine.h"

namespace thrifty {
namespace {

using testing_fixtures::Fig51Activities;
using testing_fixtures::kFig51Epochs;

// Exact-level percentages (x10%) for levels 1..n from EvaluateAdd popcounts.
std::vector<int> ExactTenths(const std::vector<size_t>& at_least_pops) {
  std::vector<int> tenths;
  for (size_t m = 1; m <= at_least_pops.size(); ++m) {
    size_t above = m < at_least_pops.size() ? at_least_pops[m] : 0;
    tenths.push_back(static_cast<int>(at_least_pops[m - 1] - above));
  }
  return tenths;
}

class Fig53PanelsTest : public ::testing::Test {
 protected:
  Fig53PanelsTest() : activities_(Fig51Activities()) {}

  const ActivityVector& T(int i) {
    return activities_[static_cast<size_t>(i - 1)];
  }

  std::vector<ActivityVector> activities_;
};

TEST_F(Fig53PanelsTest, PanelA_GroupT3) {
  GroupLevelSet group(kFig51Epochs);
  group.Add(T(3));
  // Baseline: 1-active 30%.
  EXPECT_EQ(group.ExactLevelFractions(), (std::vector<double>{0.3}));
  // +T1? 30%->30%, 0%->30%      +T2? 30%->70%, 0%->0%
  // +T4? 30%->80%, 0%->0%       +T5? 30%->50%, 0%->10%
  // +T6? 30%->50%, 0%->20%
  EXPECT_EQ(ExactTenths(group.EvaluateAdd(T(1))), (std::vector<int>{3, 3}));
  EXPECT_EQ(ExactTenths(group.EvaluateAdd(T(2))), (std::vector<int>{7}));
  EXPECT_EQ(ExactTenths(group.EvaluateAdd(T(4))), (std::vector<int>{8}));
  EXPECT_EQ(ExactTenths(group.EvaluateAdd(T(5))), (std::vector<int>{5, 1}));
  EXPECT_EQ(ExactTenths(group.EvaluateAdd(T(6))), (std::vector<int>{5, 2}));
  // T2 is chosen: no 2-active time, and less 1-active time than T4.
  EXPECT_LT(CompareCandidateLevels(group.EvaluateAdd(T(2)),
                                   group.EvaluateAdd(T(4))),
            0);
}

TEST_F(Fig53PanelsTest, PanelB_GroupT3T2) {
  GroupLevelSet group(kFig51Epochs);
  group.Add(T(3));
  group.Add(T(2));
  EXPECT_EQ(group.ExactLevelFractions(), (std::vector<double>{0.7}));
  // +T1? 70->70, 0->30   +T4? 70->60, 0->30
  // +T5? 70->90, 0->10   +T6? 70->30, 0->50
  EXPECT_EQ(ExactTenths(group.EvaluateAdd(T(1))), (std::vector<int>{7, 3}));
  EXPECT_EQ(ExactTenths(group.EvaluateAdd(T(4))), (std::vector<int>{6, 3}));
  EXPECT_EQ(ExactTenths(group.EvaluateAdd(T(5))), (std::vector<int>{9, 1}));
  EXPECT_EQ(ExactTenths(group.EvaluateAdd(T(6))), (std::vector<int>{3, 5}));
  // T5 chosen: least 2-active increase.
  for (int other : {1, 4, 6}) {
    EXPECT_LT(CompareCandidateLevels(group.EvaluateAdd(T(5)),
                                     group.EvaluateAdd(T(other))),
              0)
        << "T5 vs T" << other;
  }
}

TEST_F(Fig53PanelsTest, PanelC_GroupT3T2T5) {
  GroupLevelSet group(kFig51Epochs);
  group.Add(T(3));
  group.Add(T(2));
  group.Add(T(5));
  EXPECT_EQ(group.ExactLevelFractions(), (std::vector<double>{0.9, 0.1}));
  // +T1? 90->40, 10->50, 0->10   +T4? 90->40, 10->60, 0->0
  // +T6? 90->30, 10->70, 0->0
  EXPECT_EQ(ExactTenths(group.EvaluateAdd(T(1))),
            (std::vector<int>{4, 5, 1}));
  EXPECT_EQ(ExactTenths(group.EvaluateAdd(T(4))), (std::vector<int>{4, 6}));
  EXPECT_EQ(ExactTenths(group.EvaluateAdd(T(6))), (std::vector<int>{3, 7}));
  // T4 chosen: no 3-active time and less 2-active time than T6.
  EXPECT_LT(CompareCandidateLevels(group.EvaluateAdd(T(4)),
                                   group.EvaluateAdd(T(6))),
            0);
  EXPECT_LT(CompareCandidateLevels(group.EvaluateAdd(T(4)),
                                   group.EvaluateAdd(T(1))),
            0);
}

TEST_F(Fig53PanelsTest, PanelD_GroupT2ToT5_AllTies) {
  GroupLevelSet group(kFig51Epochs);
  for (int i : {3, 2, 5, 4}) group.Add(T(i));
  EXPECT_EQ(group.ExactLevelFractions(), (std::vector<double>{0.4, 0.6}));
  // +T1? 40->10, 60->60, 0->30, 0->0  (the dagger note: with T2-T5 only,
  // epochs t1,t3,t4,t8 have one active; with T1 added only t8 does)
  // +T6? identical transitions -> "All ties; T6 is chosen".
  auto t1 = group.EvaluateAdd(T(1));
  auto t6 = group.EvaluateAdd(T(6));
  EXPECT_EQ(ExactTenths(t1), (std::vector<int>{1, 6, 3}));
  EXPECT_EQ(ExactTenths(t6), (std::vector<int>{1, 6, 3}));
  EXPECT_EQ(CompareCandidateLevels(t1, t6), 0);
}

TEST_F(Fig53PanelsTest, PanelE_TtpDropRejectsT1) {
  GroupLevelSet group(kFig51Epochs);
  for (int i : {3, 2, 5, 4, 6}) group.Add(T(i));
  // TTP (for R <= 3) before adding T1: 10% + 60% + 30% = 100%.
  EXPECT_EQ(group.ExactLevelFractions(),
            (std::vector<double>{0.1, 0.6, 0.3}));
  EXPECT_DOUBLE_EQ(group.Ttp(3), 1.0);
  // TTP (for R <= 3) if T1 is added: 0% + 30% + 60% = 90% < 99.9%.
  auto pops = group.EvaluateAdd(T(1));
  EXPECT_EQ(ExactTenths(pops), (std::vector<int>{0, 3, 6, 1}));
  EXPECT_DOUBLE_EQ(group.TtpFromPopcounts(pops, 3), 0.9);
  EXPECT_LT(group.TtpFromPopcounts(pops, 3), 0.999);
}

// §4.4: "TDD achieves load balancing among tenants implicitly" — under a
// symmetric rotating load, the busy time of a group's MPPDBs is spread
// evenly rather than piling onto one replica.
TEST(LoadBalancingTest, BusyTimeSpreadsAcrossReplicas) {
  SimEngine engine;
  std::vector<std::unique_ptr<MppdbInstance>> instances;
  std::vector<MppdbInstance*> raw;
  for (InstanceId id = 0; id < 3; ++id) {
    instances.push_back(std::make_unique<MppdbInstance>(id, 4, &engine));
    for (TenantId t = 0; t < 6; ++t) instances.back()->AddTenant(t, 100);
    raw.push_back(instances.back().get());
  }
  GroupRouter router(0, raw);
  QueryTemplate tmpl;
  tmpl.id = 0;
  tmpl.work_seconds_per_gb = 1.2;  // 30 s per query on 4 nodes
  QueryId next = 0;
  // Two tenants are always concurrently active, rotating over six tenants.
  for (SimTime t = 0; t < 2 * kHour; t += 20 * kSecond) {
    engine.ScheduleAt(t, [&, t](SimTime) {
      TenantId tenant = static_cast<TenantId>((t / (20 * kSecond)) % 6);
      auto decision = router.Route(tenant);
      ASSERT_TRUE(decision.ok());
      QuerySubmission s;
      s.query_id = next++;
      s.tenant_id = tenant;
      ASSERT_TRUE(decision->instance->Submit(s, tmpl).ok());
    });
  }
  engine.Run();
  double total = 0;
  double max_busy = 0;
  for (MppdbInstance* m : raw) {
    total += DurationToSeconds(m->busy_time());
    max_busy = std::max(max_busy, DurationToSeconds(m->busy_time()));
  }
  ASSERT_GT(total, 0);
  // With ~2 concurrently active tenants the load spreads over (at least)
  // two replicas rather than piling onto one; Algorithm 1 never touches a
  // third MPPDB it does not need.
  EXPECT_LT(max_busy / total, 0.7);
  int replicas_used = 0;
  for (MppdbInstance* m : raw) {
    replicas_used += m->busy_time() > 0 ? 1 : 0;
  }
  EXPECT_GE(replicas_used, 2);
}

}  // namespace
}  // namespace thrifty
