// Hierarchical shard -> solve -> merge placement (placement/hierarchical.h):
// the logical shard partition must be a pure function of the tenant set,
// merged plans must verify, and the returned plan must be byte-identical
// at every num_shards x shard_jobs x solver_jobs combination.

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "placement/hierarchical.h"
#include "placement/two_step.h"

namespace thrifty {
namespace {

struct Instance {
  std::vector<ActivityVector> activities;
  std::vector<TenantSpec> tenants;
};

// Tenants with phase-structured activity (a handful of "time zones" over
// the horizon) plus some all-zero tenants, from an id-keyed Rng stream so
// any failure replays from the case seed alone.
Instance RandomInstance(uint64_t seed, int num_tenants, size_t num_epochs) {
  Instance inst;
  const std::vector<int> sizes = {2, 4, 8};
  Rng rng(seed);
  for (TenantId id = 1; id <= num_tenants; ++id) {
    Rng tenant_rng = rng.Fork(static_cast<uint64_t>(id));
    DynamicBitmap bits(num_epochs);
    size_t phase = tenant_rng.NextBounded(4) * (num_epochs / 4);
    int runs = static_cast<int>(tenant_rng.NextInt(0, 3));
    for (int run = 0; run < runs; ++run) {
      size_t begin = phase + tenant_rng.NextBounded(num_epochs / 4);
      bits.SetRange(begin, std::min(num_epochs,
                                    begin + 4 + tenant_rng.NextBounded(24)));
    }
    inst.activities.push_back(ActivityVector::FromBitmap(id, bits));
    TenantSpec spec;
    spec.id = id;
    spec.requested_nodes = sizes[tenant_rng.NextBounded(sizes.size())];
    inst.tenants.push_back(spec);
  }
  return inst;
}

// The plan's deterministic bytes: group order, membership order, and size
// class. Wall-clock fields are excluded on purpose.
std::string PlanFingerprint(const GroupingSolution& solution) {
  std::ostringstream os;
  for (const auto& group : solution.groups) {
    os << group.max_nodes << "[";
    for (TenantId id : group.tenant_ids) os << id << ",";
    os << "];";
  }
  return os.str();
}

// Tenant-id view of a partition, for comparing partitions computed from
// differently-ordered item arrays.
std::vector<std::vector<TenantId>> PartitionTenants(
    const PackingProblem& problem,
    const std::vector<std::vector<size_t>>& partition) {
  std::vector<std::vector<TenantId>> out;
  for (const auto& shard : partition) {
    std::vector<TenantId> ids;
    for (size_t index : shard) ids.push_back(problem.items[index].tenant_id);
    out.push_back(std::move(ids));
  }
  return out;
}

TEST(HierarchicalTest, PartitionIsPureFunctionOfTenantSet) {
  for (uint64_t seed : {11u, 12u, 13u}) {
    Instance inst = RandomInstance(seed, 240, 512);
    auto problem = MakePackingProblem(inst.tenants, inst.activities, 3, 0.99);
    ASSERT_TRUE(problem.ok());
    HierarchicalOptions options;
    options.shard_tenant_target = 48;
    auto base = PartitionTenants(
        *problem, ComputeShardPartition(*problem, options));

    // Reverse the item array: shard membership and within-shard order must
    // not move (the partition sorts by a strict total order over ids).
    PackingProblem reversed = *problem;
    std::reverse(reversed.items.begin(), reversed.items.end());
    auto permuted = PartitionTenants(
        reversed, ComputeShardPartition(reversed, options));
    EXPECT_EQ(base, permuted) << "seed=" << seed;

    // Parallelism knobs must not reach the partition.
    HierarchicalOptions parallel = options;
    parallel.num_shards = 7;
    parallel.shard_jobs = 4;
    parallel.solver_jobs = 3;
    EXPECT_EQ(base, PartitionTenants(
                        *problem, ComputeShardPartition(*problem, parallel)))
        << "seed=" << seed;

    size_t covered = 0;
    for (const auto& shard : base) {
      EXPECT_FALSE(shard.empty()) << "seed=" << seed;
      covered += shard.size();
    }
    EXPECT_EQ(covered, problem->items.size()) << "seed=" << seed;
  }
}

TEST(HierarchicalTest, MergedPlansVerify) {
  for (uint64_t seed : {21u, 22u, 23u, 24u}) {
    Instance inst = RandomInstance(seed, 300, 512);
    auto problem = MakePackingProblem(inst.tenants, inst.activities, 3, 0.99);
    ASSERT_TRUE(problem.ok());
    HierarchicalOptions options;
    options.shard_tenant_target = 64;
    HierarchicalStats stats;
    auto solution = SolveHierarchical(*problem, options, &stats);
    ASSERT_TRUE(solution.ok()) << "seed=" << seed;
    EXPECT_TRUE(VerifySolution(*problem, *solution).ok()) << "seed=" << seed;
    EXPECT_GE(stats.num_logical_shards, 4u) << "seed=" << seed;
    EXPECT_GE(stats.groups_before_merge, solution->groups.size())
        << "seed=" << seed;
  }
}

TEST(HierarchicalTest, FingerprintIdenticalAcrossParallelism) {
  Instance inst = RandomInstance(31, 260, 512);
  auto problem = MakePackingProblem(inst.tenants, inst.activities, 3, 0.99);
  ASSERT_TRUE(problem.ok());
  HierarchicalOptions base_options;
  base_options.shard_tenant_target = 48;
  auto base = SolveHierarchical(*problem, base_options);
  ASSERT_TRUE(base.ok());
  const std::string base_fp = PlanFingerprint(*base);

  for (int num_shards : {1, 4, 16}) {
    for (int solver_jobs : {1, 2, 4}) {
      HierarchicalOptions options = base_options;
      options.num_shards = num_shards;
      options.solver_jobs = solver_jobs;
      options.shard_jobs = solver_jobs;  // exercise both fan-outs at once
      auto solution = SolveHierarchical(*problem, options);
      ASSERT_TRUE(solution.ok())
          << "num_shards=" << num_shards << " solver_jobs=" << solver_jobs;
      EXPECT_EQ(base_fp, PlanFingerprint(*solution))
          << "num_shards=" << num_shards << " solver_jobs=" << solver_jobs;
    }
  }
}

TEST(HierarchicalTest, MatchesFlatSolveWhenOneShard) {
  Instance inst = RandomInstance(41, 120, 512);
  auto problem = MakePackingProblem(inst.tenants, inst.activities, 3, 0.99);
  ASSERT_TRUE(problem.ok());
  auto flat = SolveTwoStep(*problem);
  ASSERT_TRUE(flat.ok());

  // One logical shard and a merge threshold of 0 disable both phases, so
  // the hierarchical plan must reduce to the flat plan byte for byte.
  HierarchicalOptions options;
  options.shard_tenant_target = 4096;
  options.merge_fill_threshold = 0;
  HierarchicalStats stats;
  auto hier = SolveHierarchical(*problem, options, &stats);
  ASSERT_TRUE(hier.ok());
  EXPECT_EQ(stats.num_logical_shards, 1u);
  EXPECT_EQ(stats.groups_reopened, 0u);
  EXPECT_EQ(PlanFingerprint(*flat), PlanFingerprint(*hier));
}

TEST(HierarchicalTest, DirectedEmptyAndSingleTenant) {
  PackingProblem empty;
  empty.num_epochs = 64;
  auto empty_solution = SolveHierarchical(empty);
  ASSERT_TRUE(empty_solution.ok());
  EXPECT_TRUE(empty_solution->groups.empty());

  Instance inst = RandomInstance(51, 1, 128);
  auto problem = MakePackingProblem(inst.tenants, inst.activities, 3, 0.99);
  ASSERT_TRUE(problem.ok());
  // num_shards far beyond the single logical shard: the surplus batches
  // are empty and must be harmless.
  HierarchicalOptions options;
  options.num_shards = 16;
  options.shard_jobs = 4;
  HierarchicalStats stats;
  auto solution = SolveHierarchical(*problem, options, &stats);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(stats.num_logical_shards, 1u);
  ASSERT_EQ(solution->groups.size(), 1u);
  EXPECT_EQ(solution->groups[0].tenant_ids,
            std::vector<TenantId>{inst.tenants[0].id});
  EXPECT_TRUE(VerifySolution(*problem, *solution).ok());
}

TEST(HierarchicalTest, DirectedSingleTenantShards) {
  // shard_tenant_target = 1: every tenant is its own logical shard; the
  // merge pass has to stitch the singleton groups back together.
  Instance inst = RandomInstance(61, 24, 256);
  auto problem = MakePackingProblem(inst.tenants, inst.activities, 3, 0.99);
  ASSERT_TRUE(problem.ok());
  HierarchicalOptions options;
  options.shard_tenant_target = 1;
  HierarchicalStats stats;
  auto solution = SolveHierarchical(*problem, options, &stats);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(stats.num_logical_shards, 24u);
  EXPECT_EQ(stats.max_shard_tenants, 1u);
  EXPECT_TRUE(VerifySolution(*problem, *solution).ok());
}

TEST(HierarchicalTest, DirectedAllTenantsOneFingerprint) {
  // Identical activity everywhere: every tenant maps to the same signature
  // and the partition falls back to the (active epochs, id) tie-break.
  const size_t num_epochs = 256;
  DynamicBitmap bits(num_epochs);
  bits.SetRange(32, 96);
  std::vector<ActivityVector> activities;
  std::vector<TenantSpec> tenants;
  for (TenantId id = 1; id <= 40; ++id) {
    activities.push_back(ActivityVector::FromBitmap(id, bits));
    TenantSpec spec;
    spec.id = id;
    spec.requested_nodes = 4;
    tenants.push_back(spec);
  }
  ActivitySignature first = ComputeActivitySignature(activities[0], 32);
  for (const auto& v : activities) {
    EXPECT_TRUE(first == ComputeActivitySignature(v, 32));
  }

  auto problem = MakePackingProblem(tenants, activities, 3, 0.99);
  ASSERT_TRUE(problem.ok());
  HierarchicalOptions options;
  options.shard_tenant_target = 8;
  auto base = SolveHierarchical(*problem, options);
  ASSERT_TRUE(base.ok());
  EXPECT_TRUE(VerifySolution(*problem, *base).ok());
  for (int num_shards : {1, 4, 16}) {
    HierarchicalOptions batched = options;
    batched.num_shards = num_shards;
    batched.shard_jobs = 2;
    auto solution = SolveHierarchical(*problem, batched);
    ASSERT_TRUE(solution.ok()) << "num_shards=" << num_shards;
    EXPECT_EQ(PlanFingerprint(*base), PlanFingerprint(*solution))
        << "num_shards=" << num_shards;
  }
}

TEST(HierarchicalTest, SignatureDirected) {
  const size_t num_epochs = 1024;
  DynamicBitmap zero(num_epochs);
  ActivitySignature zero_sig =
      ComputeActivitySignature(ActivityVector::FromBitmap(1, zero), 32);
  EXPECT_EQ(zero_sig.hi, 0u);
  EXPECT_EQ(zero_sig.lo, 0u);

  // Early-horizon and late-horizon tenants must differ in the leading
  // bands, so signature order separates phases.
  DynamicBitmap early(num_epochs);
  early.SetRange(0, 128);
  DynamicBitmap late(num_epochs);
  late.SetRange(num_epochs - 128, num_epochs);
  auto early_sig =
      ComputeActivitySignature(ActivityVector::FromBitmap(2, early), 32);
  auto late_sig =
      ComputeActivitySignature(ActivityVector::FromBitmap(3, late), 32);
  EXPECT_FALSE(early_sig == late_sig);
  EXPECT_TRUE(late_sig < early_sig);  // active leading bands sort higher
  EXPECT_NE(early_sig.hi, 0u);
  EXPECT_EQ(early_sig.lo, 0u);
  EXPECT_NE(late_sig.lo, 0u);

  // Band count is clamped; 0 and 1 behave identically.
  auto one_band =
      ComputeActivitySignature(ActivityVector::FromBitmap(2, early), 1);
  auto zero_bands =
      ComputeActivitySignature(ActivityVector::FromBitmap(2, early), 0);
  EXPECT_TRUE(one_band == zero_bands);
}

TEST(HierarchicalTest, ParallelismKnobsClampLikeTwoStep) {
  // HierarchicalOptions delegates job validation: 0 / negative values are
  // the serial path, not an error, and the plan is unchanged.
  Instance inst = RandomInstance(71, 100, 256);
  auto problem = MakePackingProblem(inst.tenants, inst.activities, 3, 0.99);
  ASSERT_TRUE(problem.ok());
  HierarchicalOptions base;
  base.shard_tenant_target = 32;
  auto reference = SolveHierarchical(*problem, base);
  ASSERT_TRUE(reference.ok());
  HierarchicalOptions clamped = base;
  clamped.shard_jobs = 0;
  clamped.solver_jobs = -2;
  clamped.num_shards = -5;
  auto solution = SolveHierarchical(*problem, clamped);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(PlanFingerprint(*reference), PlanFingerprint(*solution));
}

}  // namespace
}  // namespace thrifty
