#include "common/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace thrifty {
namespace {

TEST(RunningStatsTest, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.Mean(), 0);
  EXPECT_EQ(s.Variance(), 0);
  EXPECT_EQ(s.min(), 0);
  EXPECT_EQ(s.max(), 0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.Mean(), 3.5);
  EXPECT_EQ(s.Variance(), 0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStatsTest, MatchesDirectComputation) {
  std::vector<double> values = {2, 4, 4, 4, 5, 5, 7, 9};
  RunningStats s;
  for (double v : values) s.Add(v);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  // Sample variance with n-1 denominator: sum sq dev = 32, / 7.
  EXPECT_NEAR(s.Variance(), 32.0 / 7, 1e-12);
  EXPECT_NEAR(s.StdDev(), std::sqrt(32.0 / 7), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  Rng rng(5);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble() * 100;
    all.Add(v);
    (i % 2 == 0 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.Mean(), all.Mean(), 1e-9);
  EXPECT_NEAR(a.Variance(), all.Variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, b;
  a.Add(1);
  a.Add(2);
  a.Merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.Merge(a);  // adopt
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.Mean(), 1.5);
}

}  // namespace
}  // namespace thrifty
