// SIMD kernel correctness: every dispatched primitive must be bit-identical
// to its scalar reference on every input. Cases are randomized but id-keyed
// — each case derives its inputs from Rng(kSuiteSeed).Fork(case_id), so a
// failure report's case_id replays the exact inputs in isolation.

#include "common/simd.h"

#include <bit>
#include <cstring>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace thrifty {
namespace {

constexpr uint64_t kSuiteSeed = 0x51D0CAFE;
constexpr int kRandomCases = 400;

// Case inputs: span length, word patterns, and an intra-allocation offset so
// unaligned starts (spans rarely begin on a 32-byte boundary in the ragged
// arena) are exercised too.
struct KernelCase {
  size_t n = 0;
  size_t offset = 0;  // words of padding before the span start
  std::vector<uint64_t> a, b, c;
};

uint64_t RandomWord(Rng* rng) {
  // Mix dense, sparse, and structured words: uniform bits are ~50% dense,
  // which never exercises the all-zero / all-one carry paths.
  switch (rng->NextBounded(5)) {
    case 0:
      return 0;
    case 1:
      return ~uint64_t{0};
    case 2:
      return rng->Next() & rng->Next() & rng->Next();  // sparse
    case 3:
      return rng->Next() | rng->Next() | rng->Next();  // dense
    default:
      return rng->Next();
  }
}

KernelCase MakeCase(uint64_t case_id) {
  Rng rng = Rng(kSuiteSeed).Fork(case_id);
  KernelCase kc;
  // Lengths cluster around the vector-width boundaries (0..4 words, one
  // AVX2 register, the 8-word unroll, and past it) plus a long tail.
  switch (rng.NextBounded(4)) {
    case 0:
      kc.n = rng.NextBounded(9);  // 0..8: inline scalar + boundary
      break;
    case 1:
      kc.n = 8 + rng.NextBounded(9);  // 8..16: one or two unroll blocks
      break;
    case 2:
      kc.n = rng.NextBounded(130);  // word-boundary straddles
      break;
    default:
      kc.n = 1 + rng.NextBounded(4096);  // long spans
      break;
  }
  kc.offset = rng.NextBounded(4);
  kc.a.resize(kc.offset + kc.n);
  kc.b.resize(kc.offset + kc.n);
  kc.c.resize(kc.offset + kc.n);
  for (size_t i = 0; i < kc.offset + kc.n; ++i) {
    kc.a[i] = RandomWord(&rng);
    kc.b[i] = RandomWord(&rng);
    kc.c[i] = RandomWord(&rng);
  }
  return kc;
}

// The non-scalar target this machine can run, if any.
bool VectorTarget(simd::Target* out) {
  for (simd::Target t : {simd::Target::kAvx2, simd::Target::kNeon}) {
    if (simd::TargetSupported(t)) {
      *out = t;
      return true;
    }
  }
  return false;
}

// Runs `check` under the vector target (when supported); restores dispatch.
// The wrappers in simd.h route short spans to an inline scalar body, so the
// checks below call through ActiveKernels() directly to hit the vector code
// even at tiny n.
class SimdKernelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = simd::ActiveTarget();
    has_vector_ = VectorTarget(&vector_target_);
  }
  void TearDown() override { simd::SetSimdTargetForTest(saved_); }

  simd::Target saved_ = simd::Target::kScalar;
  simd::Target vector_target_ = simd::Target::kScalar;
  bool has_vector_ = false;
};

TEST_F(SimdKernelTest, SpanPopcountMatchesScalar) {
  if (!has_vector_) GTEST_SKIP() << "no vector target on this CPU";
  simd::SetSimdTargetForTest(vector_target_);
  for (int id = 0; id < kRandomCases; ++id) {
    KernelCase kc = MakeCase(1000 + id);
    const uint64_t* a = kc.a.data() + kc.offset;
    EXPECT_EQ(simd::ActiveKernels().span_popcount(a, kc.n),
              simd::ScalarSpanPopcount(a, kc.n))
        << "case_id=" << 1000 + id;
  }
}

TEST_F(SimdKernelTest, AndPopcountMatchesScalar) {
  if (!has_vector_) GTEST_SKIP() << "no vector target on this CPU";
  simd::SetSimdTargetForTest(vector_target_);
  for (int id = 0; id < kRandomCases; ++id) {
    KernelCase kc = MakeCase(2000 + id);
    const uint64_t* a = kc.a.data() + kc.offset;
    const uint64_t* b = kc.b.data() + kc.offset;
    EXPECT_EQ(simd::ActiveKernels().and_popcount(a, b, kc.n),
              simd::ScalarAndPopcount(a, b, kc.n))
        << "case_id=" << 2000 + id;
  }
}

TEST_F(SimdKernelTest, OrReduceMatchesScalar) {
  if (!has_vector_) GTEST_SKIP() << "no vector target on this CPU";
  simd::SetSimdTargetForTest(vector_target_);
  for (int id = 0; id < kRandomCases; ++id) {
    KernelCase kc = MakeCase(3000 + id);
    std::vector<uint64_t> dst_vec = kc.a;
    std::vector<uint64_t> ref_vec = kc.a;
    uint64_t* dst = dst_vec.data() + kc.offset;
    uint64_t* ref = ref_vec.data() + kc.offset;
    const uint64_t* src = kc.b.data() + kc.offset;
    uint64_t got = simd::ActiveKernels().or_reduce(dst, src, kc.n);
    uint64_t want = simd::ScalarOrReduce(ref, src, kc.n);
    EXPECT_EQ(got, want) << "case_id=" << 3000 + id;
    EXPECT_EQ(dst_vec, ref_vec) << "case_id=" << 3000 + id;
  }
}

TEST_F(SimdKernelTest, OrPopcountDeltaMatchesScalar) {
  if (!has_vector_) GTEST_SKIP() << "no vector target on this CPU";
  simd::SetSimdTargetForTest(vector_target_);
  for (int id = 0; id < kRandomCases; ++id) {
    KernelCase kc = MakeCase(4000 + id);
    const uint64_t* a = kc.a.data() + kc.offset;
    const uint64_t* c = kc.c.data() + kc.offset;
    EXPECT_EQ(simd::ActiveKernels().or_popcount_delta(a, c, kc.n),
              simd::ScalarOrPopcountDelta(a, c, kc.n))
        << "case_id=" << 4000 + id;
  }
}

TEST_F(SimdKernelTest, OrAndPopcountDeltaMatchesScalar) {
  if (!has_vector_) GTEST_SKIP() << "no vector target on this CPU";
  simd::SetSimdTargetForTest(vector_target_);
  for (int id = 0; id < kRandomCases; ++id) {
    KernelCase kc = MakeCase(5000 + id);
    const uint64_t* a = kc.a.data() + kc.offset;
    const uint64_t* b = kc.b.data() + kc.offset;
    const uint64_t* c = kc.c.data() + kc.offset;
    EXPECT_EQ(simd::ActiveKernels().or_and_popcount_delta(a, b, c, kc.n),
              simd::ScalarOrAndPopcountDelta(a, b, c, kc.n))
        << "case_id=" << 5000 + id;
  }
}

TEST_F(SimdKernelTest, OrAndBcastStoreDeltaMatchesScalar) {
  if (!has_vector_) GTEST_SKIP() << "no vector target on this CPU";
  simd::SetSimdTargetForTest(vector_target_);
  for (int id = 0; id < kRandomCases; ++id) {
    KernelCase kc = MakeCase(6000 + id);
    Rng rng = Rng(kSuiteSeed).Fork(60000 + id);
    uint64_t cand = RandomWord(&rng);
    const uint64_t* a = kc.a.data() + kc.offset;
    const uint64_t* b = kc.b.data() + kc.offset;
    std::vector<uint64_t> out_got(kc.n, 0xAA), out_want(kc.n, 0xAA);
    // Deltas start nonzero to prove the kernel accumulates (+=), not stores.
    std::vector<size_t> d_got(kc.n, 7), d_want(kc.n, 7);
    simd::ActiveKernels().or_and_bcast_store_delta(a, b, cand, out_got.data(),
                                                   d_got.data(), kc.n);
    simd::ScalarOrAndBcastStoreDelta(a, b, cand, out_want.data(),
                                     d_want.data(), kc.n);
    EXPECT_EQ(out_got, out_want) << "case_id=" << 6000 + id;
    EXPECT_EQ(d_got, d_want) << "case_id=" << 6000 + id;
  }
}

TEST_F(SimdKernelTest, AndNotBcastStoreDeltaMatchesScalar) {
  if (!has_vector_) GTEST_SKIP() << "no vector target on this CPU";
  simd::SetSimdTargetForTest(vector_target_);
  for (int id = 0; id < kRandomCases; ++id) {
    KernelCase kc = MakeCase(7000 + id);
    Rng rng = Rng(kSuiteSeed).Fork(70000 + id);
    uint64_t cand = RandomWord(&rng);
    const uint64_t* a = kc.a.data() + kc.offset;
    const uint64_t* b = kc.b.data() + kc.offset;
    std::vector<uint64_t> out_got(kc.n, 0xAA), out_want(kc.n, 0xAA);
    std::vector<size_t> d_got(kc.n, 7), d_want(kc.n, 7);
    simd::ActiveKernels().and_not_bcast_store_delta(a, b, cand, out_got.data(),
                                                    d_got.data(), kc.n);
    simd::ScalarAndNotBcastStoreDelta(a, b, cand, out_want.data(),
                                      d_want.data(), kc.n);
    EXPECT_EQ(out_got, out_want) << "case_id=" << 7000 + id;
    EXPECT_EQ(d_got, d_want) << "case_id=" << 7000 + id;
  }
}

// --- Directed edges (run on whatever target dispatch resolved to) --------

TEST(SimdKernelDirectedTest, ZeroLengthSpans) {
  std::vector<uint64_t> w = {~uint64_t{0}};
  EXPECT_EQ(simd::SpanPopcount(w.data(), 0), 0u);
  EXPECT_EQ(simd::AndPopcount(w.data(), w.data(), 0), 0u);
  EXPECT_EQ(simd::OrReduce(w.data(), w.data(), 0), 0u);
  EXPECT_EQ(simd::OrPopcountDelta(w.data(), w.data(), 0), 0u);
  EXPECT_EQ(simd::OrAndPopcountDelta(w.data(), w.data(), w.data(), 0), 0u);
  simd::OrAndBcastStoreDelta(w.data(), w.data(), 0, w.data(), nullptr, 0);
  simd::AndNotBcastStoreDelta(w.data(), w.data(), 0, w.data(), nullptr, 0);
  EXPECT_EQ(w[0], ~uint64_t{0});  // untouched
}

TEST(SimdKernelDirectedTest, SingleWord) {
  uint64_t a = 0xF0F0F0F0F0F0F0F0ULL;
  uint64_t c = 0x0F0FFFFF00000F0FULL;
  EXPECT_EQ(simd::SpanPopcount(&a, 1), 32u);
  EXPECT_EQ(simd::AndPopcount(&a, &c, 1),
            static_cast<size_t>(std::popcount(a & c)));
  EXPECT_EQ(simd::OrPopcountDelta(&a, &c, 1),
            static_cast<size_t>(std::popcount(c & ~a)));
  uint64_t dst = a;
  EXPECT_EQ(simd::OrReduce(&dst, &c, 1), a | c);
  EXPECT_EQ(dst, a | c);
}

TEST(SimdKernelDirectedTest, AllOnesSpans) {
  for (size_t n : {1, 7, 8, 9, 31, 32, 33, 1024}) {
    std::vector<uint64_t> ones(n, ~uint64_t{0});
    EXPECT_EQ(simd::SpanPopcount(ones.data(), n), 64 * n) << "n=" << n;
    EXPECT_EQ(simd::AndPopcount(ones.data(), ones.data(), n), 64 * n);
    // Everything already set: OR lifts nothing.
    EXPECT_EQ(simd::OrPopcountDelta(ones.data(), ones.data(), n), 0u);
  }
}

TEST(SimdKernelDirectedTest, UnalignedHeadAndTail) {
  // Same span evaluated at every start offset within an over-allocated
  // buffer: results must not depend on pointer alignment.
  constexpr size_t kN = 67;
  std::vector<uint64_t> buf(kN + 8);
  Rng rng = Rng(kSuiteSeed).Fork(999);
  for (auto& w : buf) w = rng.Next();
  for (size_t off = 0; off < 8; ++off) {
    std::vector<uint64_t> shifted(buf.begin() + off, buf.begin() + off + kN);
    EXPECT_EQ(simd::SpanPopcount(buf.data() + off, kN),
              simd::ScalarSpanPopcount(shifted.data(), kN))
        << "offset=" << off;
  }
}

TEST(SimdKernelDirectedTest, WordBoundaryStraddles) {
  // Lengths crossing every internal block boundary of the unrolled loops.
  for (size_t n = 0; n <= 70; ++n) {
    std::vector<uint64_t> a(n), c(n);
    Rng rng = Rng(kSuiteSeed).Fork(5000 + n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = rng.Next();
      c[i] = rng.Next() | rng.Next();
    }
    EXPECT_EQ(simd::SpanPopcount(a.data(), n),
              simd::ScalarSpanPopcount(a.data(), n))
        << "n=" << n;
    EXPECT_EQ(simd::OrAndPopcountDelta(a.data(), c.data(), c.data(), n),
              simd::ScalarOrAndPopcountDelta(a.data(), c.data(), c.data(), n))
        << "n=" << n;
  }
}

TEST(SimdKernelDirectedTest, TargetIntrospection) {
  simd::Target t = simd::ActiveTarget();
  EXPECT_TRUE(simd::TargetSupported(t));
  EXPECT_STREQ(simd::TargetName(), simd::TargetName(t));
  EXPECT_TRUE(simd::TargetSupported(simd::Target::kScalar));
  // Requesting an unsupported target clamps to scalar instead of crashing.
  simd::Target unsupported = simd::TargetSupported(simd::Target::kAvx2)
                                 ? simd::Target::kNeon
                                 : simd::Target::kAvx2;
  if (!simd::TargetSupported(unsupported)) {
    EXPECT_EQ(simd::SetSimdTargetForTest(unsupported), simd::Target::kScalar);
  }
  simd::SetSimdTargetForTest(t);  // restore
}

// --- EvalArena ------------------------------------------------------------

TEST(EvalArenaTest, AllocationsAreDisjointAndAligned) {
  EvalArena arena;
  arena.Reserve(1024);
  uint64_t* a = arena.Alloc<uint64_t>(100);
  uint32_t* b = arena.Alloc<uint32_t>(7);  // odd count: rounds to words
  uint64_t* c = arena.Alloc<uint64_t>(1);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 64, 0u);  // block alignment
  for (size_t i = 0; i < 100; ++i) a[i] = 1;
  for (size_t i = 0; i < 7; ++i) b[i] = 2;
  *c = 3;
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(a[i], 1u);
  for (size_t i = 0; i < 7; ++i) EXPECT_EQ(b[i], 2u);
  EXPECT_EQ(*c, 3u);
  // 7 uint32s occupy 28 bytes, rounded up to 4 whole words.
  EXPECT_EQ(arena.used_words(), 100u + 4u + 1u);
}

TEST(EvalArenaTest, ResetReusesTheBlock) {
  EvalArena arena;
  arena.Reserve(64);
  uint64_t* first = arena.Alloc<uint64_t>(32);
  size_t cap = arena.capacity_words();
  arena.Reset();
  EXPECT_EQ(arena.used_words(), 0u);
  uint64_t* again = arena.Alloc<uint64_t>(32);
  EXPECT_EQ(first, again);  // same block, no reallocation
  EXPECT_EQ(arena.capacity_words(), cap);
}

TEST(EvalArenaTest, BackstopGrowPreservesLivePrefix) {
  EvalArena arena;
  arena.Reserve(8);
  uint64_t* a = arena.Alloc<uint64_t>(8);
  for (size_t i = 0; i < 8; ++i) a[i] = 100 + i;
  // Under-reserved: this Alloc must grow, copying the live prefix.
  uint64_t* b = arena.Alloc<uint64_t>(1024);
  b[0] = 1;
  uint64_t* base = reinterpret_cast<uint64_t*>(b) - 8;
  for (size_t i = 0; i < 8; ++i) EXPECT_EQ(base[i], 100 + i);
}

TEST(EvalArenaTest, MoveTransfersOwnership) {
  EvalArena arena;
  arena.Reserve(16);
  uint64_t* p = arena.Alloc<uint64_t>(4);
  p[0] = 42;
  EvalArena other = std::move(arena);
  EXPECT_EQ(other.used_words(), 4u);
  EvalArena third;
  third = std::move(other);
  EXPECT_EQ(third.used_words(), 4u);
}

}  // namespace
}  // namespace thrifty
