#include "core/reconsolidation.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace thrifty {
namespace {

class ReconsolidationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Two deployed groups of 2-node tenants plus staggered histories.
    plan_.replication_factor = 2;
    plan_.sla_fraction = 0.99;
    for (GroupId g = 0; g < 2; ++g) {
      GroupDeployment group;
      group.group_id = g;
      for (int i = 0; i < 3; ++i) {
        TenantSpec spec;
        spec.id = g * 3 + i;
        spec.requested_nodes = 2;
        spec.data_gb = 200;
        group.tenants.push_back(spec);
        TenantLog log;
        log.tenant_id = spec.id;
        log.entries.push_back(
            {spec.id * 2 * kHour, 0, 30 * kMinute, -1});
        history_.push_back(log);
      }
      group.cluster.mppdb_nodes = {2, 2};
      plan_.groups.push_back(group);
    }
    options_.replication_factor = 2;
    options_.sla_fraction = 0.99;
    options_.epoch_size = 5 * kMinute;
  }

  /// Planner options with absorbers pinned off, for tests that assert the
  /// exact trigger partition (absorbers deliberately widen it).
  ReconsolidationOptions NoAbsorbers() const {
    ReconsolidationOptions opts;
    opts.advisor = options_;
    opts.absorbers_per_class = 0;
    return opts;
  }

  DeploymentPlan plan_;
  std::vector<TenantLog> history_;
  AdvisorOptions options_;
};

TEST_F(ReconsolidationTest, NothingAffectedKeepsEverything) {
  ReconsolidationPlanner planner(options_);
  ReconsolidationInput input;
  input.current_plan = plan_;
  auto output = planner.Plan(input, {}, 0, kDay);
  ASSERT_TRUE(output.ok()) << output.status();
  EXPECT_EQ(output->plan.groups.size(), 2u);
  EXPECT_TRUE(output->regrouped_tenants.empty());
  EXPECT_EQ(output->untouched_groups.size(), 2u);
}

TEST_F(ReconsolidationTest, ScaledGroupIsRegrouped) {
  ReconsolidationPlanner planner(NoAbsorbers());
  ReconsolidationInput input;
  input.current_plan = plan_;
  input.scaled_groups = {0};
  auto output = planner.Plan(input, history_, 0, kDay);
  ASSERT_TRUE(output.ok()) << output.status();
  // Group 1 untouched; group 0's three tenants regrouped.
  EXPECT_EQ(output->untouched_groups, (std::vector<GroupId>{1}));
  EXPECT_EQ(output->regrouped_tenants.size(), 3u);
  // All six tenants still placed.
  size_t placed = 0;
  for (const auto& group : output->plan.groups) placed += group.tenants.size();
  EXPECT_EQ(placed, 6u);
}

TEST_F(ReconsolidationTest, DeregistrationShrinksItsGroup) {
  ReconsolidationPlanner planner(NoAbsorbers());
  ReconsolidationInput input;
  input.current_plan = plan_;
  input.deregistered = {4};  // member of group 1
  auto output = planner.Plan(input, history_, 0, kDay);
  ASSERT_TRUE(output.ok()) << output.status();
  EXPECT_EQ(output->untouched_groups, (std::vector<GroupId>{0}));
  size_t placed = 0;
  for (const auto& group : output->plan.groups) {
    for (const auto& t : group.tenants) {
      EXPECT_NE(t.id, 4);
      ++placed;
    }
  }
  EXPECT_EQ(placed, 5u);
}

TEST_F(ReconsolidationTest, NewTenantsJoinTheCycle) {
  ReconsolidationPlanner planner(NoAbsorbers());
  ReconsolidationInput input;
  input.current_plan = plan_;
  TenantSpec fresh;
  fresh.id = 100;
  fresh.requested_nodes = 2;
  fresh.data_gb = 200;
  input.new_tenants = {fresh};
  TenantLog fresh_log;
  fresh_log.tenant_id = 100;
  fresh_log.entries.push_back({20 * kHour, 0, 30 * kMinute, -1});
  std::vector<TenantLog> history = history_;
  history.push_back(fresh_log);
  auto output = planner.Plan(input, history, 0, kDay);
  ASSERT_TRUE(output.ok()) << output.status();
  EXPECT_EQ(output->untouched_groups.size(), 2u);
  bool found = false;
  for (const auto& group : output->plan.groups) {
    for (const auto& t : group.tenants) found |= (t.id == 100);
  }
  EXPECT_TRUE(found);
}

TEST_F(ReconsolidationTest, AlwaysActiveRegroupedTenantGetsDedicatedGroup) {
  ReconsolidationPlanner planner(options_);
  ReconsolidationInput input;
  input.current_plan = plan_;
  input.scaled_groups = {0};
  // Tenant 1's recent history is around-the-clock activity.
  std::vector<TenantLog> history = history_;
  history[1].entries.clear();
  history[1].entries.push_back({0, 0, kDay, -1});
  auto output = planner.Plan(input, history, 0, kDay);
  ASSERT_TRUE(output.ok()) << output.status();
  bool dedicated_found = false;
  for (const auto& group : output->plan.groups) {
    if (group.tenants.size() == 1 && group.tenants[0].id == 1) {
      dedicated_found = true;
    }
    for (const auto& t : group.tenants) {
      if (t.id == 1) EXPECT_EQ(group.tenants.size(), 1u);
    }
  }
  EXPECT_TRUE(dedicated_found);
}

TEST_F(ReconsolidationTest, HighestIdGroupDissolveNeverReusesItsId) {
  // Dissolve the *highest-id* group: untouched groups keep their ids and
  // fresh groups are numbered densely starting one past the input plan's
  // maximum id — the dissolved id must never be handed out again this
  // cycle.
  ReconsolidationPlanner planner(NoAbsorbers());
  ReconsolidationInput input;
  input.current_plan = plan_;
  input.scaled_groups = {1};
  auto output = planner.Plan(input, history_, 0, kDay);
  ASSERT_TRUE(output.ok()) << output.status();
  EXPECT_EQ(output->untouched_groups, (std::vector<GroupId>{0}));
  EXPECT_EQ(output->resolved_groups, (std::vector<GroupId>{1}));
  std::vector<GroupId> fresh;
  for (const auto& group : output->plan.groups) {
    if (group.group_id == 0) continue;
    EXPECT_NE(group.group_id, 1);
    fresh.push_back(group.group_id);
  }
  ASSERT_FALSE(fresh.empty());
  std::sort(fresh.begin(), fresh.end());
  for (size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_EQ(fresh[i], static_cast<GroupId>(2 + i));
  }
}

TEST_F(ReconsolidationTest, ActivityDriftTriggersResolveOnlyPastThreshold) {
  // Record each member's plan-time activity ratio as its drift baseline.
  DeploymentPlan plan = plan_;
  for (auto& group : plan.groups) {
    for (const auto& tenant : group.tenants) {
      group.member_activity_baseline.push_back(
          history_[static_cast<size_t>(tenant.id)].ActiveRatio(0, kDay));
    }
  }
  // Tenant 1 (group 0) now runs 4 hours instead of 30 minutes: its ratio
  // moves by ~0.15, far past the 0.05 threshold; everyone else is exactly
  // on baseline.
  std::vector<TenantLog> history = history_;
  history[1].entries.clear();
  history[1].entries.push_back({2 * kHour, 0, 4 * kHour, -1});

  ReconsolidationOptions opts = NoAbsorbers();
  opts.activity_delta_threshold = 0.05;
  ReconsolidationInput input;
  input.current_plan = plan;
  {
    ReconsolidationPlanner planner(opts);
    auto output = planner.Plan(input, history, 0, kDay);
    ASSERT_TRUE(output.ok()) << output.status();
    EXPECT_EQ(output->untouched_groups, (std::vector<GroupId>{1}));
    EXPECT_EQ(output->resolved_groups, (std::vector<GroupId>{0}));
    EXPECT_EQ(output->drifted_groups, 1u);
  }
  // Negative threshold disables screening: the same drift goes unseen.
  opts.activity_delta_threshold = -1.0;
  {
    ReconsolidationPlanner planner(opts);
    auto output = planner.Plan(input, history, 0, kDay);
    ASSERT_TRUE(output.ok()) << output.status();
    EXPECT_EQ(output->untouched_groups.size(), 2u);
    EXPECT_EQ(output->drifted_groups, 0u);
  }
}

TEST_F(ReconsolidationTest, UnaffectedTailGroupIsOpenedAsAbsorber) {
  // With absorbers on, a re-solve of group 0 also opens group 1 — the
  // least-populated unaffected group of the same size class — so affected
  // tenants can merge into its spare capacity.
  ReconsolidationOptions opts;
  opts.advisor = options_;
  opts.absorbers_per_class = 1;
  ReconsolidationPlanner planner(opts);
  ReconsolidationInput input;
  input.current_plan = plan_;
  input.scaled_groups = {0};
  auto output = planner.Plan(input, history_, 0, kDay);
  ASSERT_TRUE(output.ok()) << output.status();
  EXPECT_TRUE(output->untouched_groups.empty());
  EXPECT_EQ(output->resolved_groups, (std::vector<GroupId>{0, 1}));
  EXPECT_EQ(output->absorber_groups, 1u);
  EXPECT_EQ(output->regrouped_tenants.size(), 6u);
  size_t placed = 0;
  for (const auto& group : output->plan.groups) placed += group.tenants.size();
  EXPECT_EQ(placed, 6u);
}

TEST_F(ReconsolidationTest, ConflictingRegistrationRejected) {
  ReconsolidationPlanner planner(options_);
  ReconsolidationInput input;
  input.current_plan = plan_;
  TenantSpec fresh;
  fresh.id = 100;
  fresh.requested_nodes = 2;
  input.new_tenants = {fresh};
  input.deregistered = {100};
  EXPECT_EQ(planner.Plan(input, history_, 0, kDay).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace thrifty
