#include "core/reconsolidation.h"

#include <gtest/gtest.h>

namespace thrifty {
namespace {

class ReconsolidationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Two deployed groups of 2-node tenants plus staggered histories.
    plan_.replication_factor = 2;
    plan_.sla_fraction = 0.99;
    for (GroupId g = 0; g < 2; ++g) {
      GroupDeployment group;
      group.group_id = g;
      for (int i = 0; i < 3; ++i) {
        TenantSpec spec;
        spec.id = g * 3 + i;
        spec.requested_nodes = 2;
        spec.data_gb = 200;
        group.tenants.push_back(spec);
        TenantLog log;
        log.tenant_id = spec.id;
        log.entries.push_back(
            {spec.id * 2 * kHour, 0, 30 * kMinute, -1});
        history_.push_back(log);
      }
      group.cluster.mppdb_nodes = {2, 2};
      plan_.groups.push_back(group);
    }
    options_.replication_factor = 2;
    options_.sla_fraction = 0.99;
    options_.epoch_size = 5 * kMinute;
  }

  DeploymentPlan plan_;
  std::vector<TenantLog> history_;
  AdvisorOptions options_;
};

TEST_F(ReconsolidationTest, NothingAffectedKeepsEverything) {
  ReconsolidationPlanner planner(options_);
  ReconsolidationInput input;
  input.current_plan = plan_;
  auto output = planner.Plan(input, {}, 0, kDay);
  ASSERT_TRUE(output.ok()) << output.status();
  EXPECT_EQ(output->plan.groups.size(), 2u);
  EXPECT_TRUE(output->regrouped_tenants.empty());
  EXPECT_EQ(output->untouched_groups.size(), 2u);
}

TEST_F(ReconsolidationTest, ScaledGroupIsRegrouped) {
  ReconsolidationPlanner planner(options_);
  ReconsolidationInput input;
  input.current_plan = plan_;
  input.scaled_groups = {0};
  auto output = planner.Plan(input, history_, 0, kDay);
  ASSERT_TRUE(output.ok()) << output.status();
  // Group 1 untouched; group 0's three tenants regrouped.
  EXPECT_EQ(output->untouched_groups, (std::vector<GroupId>{1}));
  EXPECT_EQ(output->regrouped_tenants.size(), 3u);
  // All six tenants still placed.
  size_t placed = 0;
  for (const auto& group : output->plan.groups) placed += group.tenants.size();
  EXPECT_EQ(placed, 6u);
}

TEST_F(ReconsolidationTest, DeregistrationShrinksItsGroup) {
  ReconsolidationPlanner planner(options_);
  ReconsolidationInput input;
  input.current_plan = plan_;
  input.deregistered = {4};  // member of group 1
  auto output = planner.Plan(input, history_, 0, kDay);
  ASSERT_TRUE(output.ok()) << output.status();
  EXPECT_EQ(output->untouched_groups, (std::vector<GroupId>{0}));
  size_t placed = 0;
  for (const auto& group : output->plan.groups) {
    for (const auto& t : group.tenants) {
      EXPECT_NE(t.id, 4);
      ++placed;
    }
  }
  EXPECT_EQ(placed, 5u);
}

TEST_F(ReconsolidationTest, NewTenantsJoinTheCycle) {
  ReconsolidationPlanner planner(options_);
  ReconsolidationInput input;
  input.current_plan = plan_;
  TenantSpec fresh;
  fresh.id = 100;
  fresh.requested_nodes = 2;
  fresh.data_gb = 200;
  input.new_tenants = {fresh};
  TenantLog fresh_log;
  fresh_log.tenant_id = 100;
  fresh_log.entries.push_back({20 * kHour, 0, 30 * kMinute, -1});
  std::vector<TenantLog> history = history_;
  history.push_back(fresh_log);
  auto output = planner.Plan(input, history, 0, kDay);
  ASSERT_TRUE(output.ok()) << output.status();
  EXPECT_EQ(output->untouched_groups.size(), 2u);
  bool found = false;
  for (const auto& group : output->plan.groups) {
    for (const auto& t : group.tenants) found |= (t.id == 100);
  }
  EXPECT_TRUE(found);
}

TEST_F(ReconsolidationTest, AlwaysActiveRegroupedTenantGetsDedicatedGroup) {
  ReconsolidationPlanner planner(options_);
  ReconsolidationInput input;
  input.current_plan = plan_;
  input.scaled_groups = {0};
  // Tenant 1's recent history is around-the-clock activity.
  std::vector<TenantLog> history = history_;
  history[1].entries.clear();
  history[1].entries.push_back({0, 0, kDay, -1});
  auto output = planner.Plan(input, history, 0, kDay);
  ASSERT_TRUE(output.ok()) << output.status();
  bool dedicated_found = false;
  for (const auto& group : output->plan.groups) {
    if (group.tenants.size() == 1 && group.tenants[0].id == 1) {
      dedicated_found = true;
    }
    for (const auto& t : group.tenants) {
      if (t.id == 1) EXPECT_EQ(group.tenants.size(), 1u);
    }
  }
  EXPECT_TRUE(dedicated_found);
}

TEST_F(ReconsolidationTest, ConflictingRegistrationRejected) {
  ReconsolidationPlanner planner(options_);
  ReconsolidationInput input;
  input.current_plan = plan_;
  TenantSpec fresh;
  fresh.id = 100;
  fresh.requested_nodes = 2;
  input.new_tenants = {fresh};
  input.deregistered = {100};
  EXPECT_EQ(planner.Plan(input, history_, 0, kDay).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace thrifty
