#include "scaling/elastic_scaler.h"

#include <gtest/gtest.h>

#include "core/thrifty.h"

namespace thrifty {
namespace {

// Unit-level harness: one group of three 2-node tenants on one MPPDB
// (R = 1), with the tracker and RT-TTP monitor driven directly.
class ElasticScalerTest : public ::testing::Test {
 protected:
  ElasticScalerTest()
      : cluster_(8, &engine_),
        monitor_(/*r=*/1, /*window=*/4 * kHour) {
    instance_ = *cluster_.CreateInstanceOnline(2);
    for (TenantId t = 0; t < 3; ++t) {
      instance_->AddTenant(t, 200);
      tenants_.push_back(
          TenantSpec{t, 2, 200, QuerySuite::kTpch, 0, 1});
    }
    router_ = std::make_unique<GroupRouter>(
        0, std::vector<MppdbInstance*>{instance_});
  }

  // Marks `tenant` active on [begin, end) in both tracker and monitor.
  void AddActivity(TenantId tenant, SimTime begin, SimTime end,
                   int count_during) {
    tracker_.OnQueryStart(tenant, begin);
    monitor_.OnActiveCountChange(begin, count_during);
    ASSERT_TRUE(tracker_.OnQueryFinish(tenant, end).ok());
    monitor_.OnActiveCountChange(end, 0);
  }

  ElasticScaler MakeScaler(double p = 0.95) {
    ElasticScalerOptions options;
    options.window = 4 * kHour;
    options.epoch_size = 10 * kSecond;
    ElasticScaler scaler(&engine_, &cluster_, &tracker_, /*r=*/1, p,
                         options);
    return scaler;
  }

  SimEngine engine_;
  Cluster cluster_;
  TenantActivityTracker tracker_;
  RtTtpMonitor monitor_;
  MppdbInstance* instance_ = nullptr;
  std::unique_ptr<GroupRouter> router_;
  std::vector<TenantSpec> tenants_;
};

TEST_F(ElasticScalerTest, NoBreachNoAction) {
  ElasticScaler scaler = MakeScaler();
  scaler.AddGroup(0, tenants_, router_.get(), &monitor_);
  AddActivity(0, 0, 10 * kMinute, 1);
  engine_.RunUntil(4 * kHour);
  scaler.CheckNow(engine_.now());
  EXPECT_TRUE(scaler.events().empty());
  EXPECT_TRUE(scaler.reconsolidation_list().empty());
}

TEST_F(ElasticScalerTest, BreachTriggersScalingAndExclusion) {
  ElasticScaler scaler = MakeScaler();
  scaler.AddGroup(0, tenants_, router_.get(), &monitor_);
  std::vector<TenantId> excluded;
  SimTime excluded_at = 0;
  scaler.set_exclusion_callback(
      [&](GroupId group, const std::vector<TenantId>& tenants, SimTime now) {
        EXPECT_EQ(group, 0);
        excluded = tenants;
        excluded_at = now;
      });

  // Tenant 2 hyperactive; tenants 0/1 sparse but overlapping tenant 2, so
  // the count exceeds R=1 for ~half the window.
  engine_.RunUntil(1 * kHour);
  tracker_.OnQueryStart(2, engine_.now());
  monitor_.OnActiveCountChange(engine_.now(), 1);
  engine_.RunUntil(2 * kHour);
  tracker_.OnQueryStart(0, engine_.now());
  monitor_.OnActiveCountChange(engine_.now(), 2);  // above R
  engine_.RunUntil(4 * kHour);
  ASSERT_TRUE(tracker_.OnQueryFinish(0, engine_.now()).ok());
  monitor_.OnActiveCountChange(engine_.now(), 1);
  ASSERT_TRUE(tracker_.OnQueryFinish(2, engine_.now()).ok());
  monitor_.OnActiveCountChange(engine_.now(), 0);

  EXPECT_LT(monitor_.RtTtp(engine_.now()), 0.95);
  scaler.CheckNow(engine_.now());
  ASSERT_EQ(scaler.events().size(), 1u);
  EXPECT_EQ(scaler.events()[0].group_id, 0);
  ASSERT_FALSE(scaler.events()[0].tenants.empty());
  // The hyperactive tenant is among the victims.
  EXPECT_TRUE(std::count(scaler.events()[0].tenants.begin(),
                         scaler.events()[0].tenants.end(), 2));

  // The new MPPDB comes online after start + load of victim data only.
  engine_.Run();
  EXPECT_FALSE(excluded.empty());
  EXPECT_GT(excluded_at, 4 * kHour);
  for (TenantId victim : scaler.events()[0].tenants) {
    EXPECT_TRUE(router_->HasDedicated(victim));
  }
  EXPECT_TRUE(scaler.reconsolidation_list().count(0));
  EXPECT_GT(cluster_.nodes_in_use(), 2);
}

TEST_F(ElasticScalerTest, OncePerGroupSuppressesRepeatScaling) {
  ElasticScaler scaler = MakeScaler();
  scaler.AddGroup(0, tenants_, router_.get(), &monitor_);
  engine_.RunUntil(1 * kHour);
  AddActivity(2, engine_.now(), engine_.now() + 3 * kHour, 2);
  engine_.RunUntil(4 * kHour + kMinute);
  scaler.CheckNow(engine_.now());
  ASSERT_EQ(scaler.events().size(), 1u);
  engine_.Run();  // provisioning completes
  // Still breached (window remembers), but once_per_group holds.
  scaler.CheckNow(engine_.now());
  EXPECT_EQ(scaler.events().size(), 1u);
}

TEST_F(ElasticScalerTest, PoolExhaustionIsToleratedAndRetried) {
  // Use up the pool so the scaler cannot get nodes.
  ASSERT_TRUE(cluster_.CreateInstanceOnline(6).ok());
  ElasticScaler scaler = MakeScaler();
  scaler.AddGroup(0, tenants_, router_.get(), &monitor_);
  engine_.RunUntil(1 * kHour);
  AddActivity(2, engine_.now(), engine_.now() + 3 * kHour, 2);
  engine_.RunUntil(4 * kHour + kMinute);
  scaler.CheckNow(engine_.now());
  EXPECT_TRUE(scaler.events().empty());  // could not act, no event recorded
  // Free capacity and retry: now it works.
  ASSERT_TRUE(cluster_.DecommissionInstance(1).ok());
  scaler.CheckNow(engine_.now());
  EXPECT_EQ(scaler.events().size(), 1u);
}

}  // namespace
}  // namespace thrifty
