#include "common/bitmap.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace thrifty {
namespace {

TEST(BitmapTest, StartsAllZero) {
  DynamicBitmap b(100);
  EXPECT_EQ(b.num_bits(), 100u);
  EXPECT_EQ(b.num_words(), 2u);
  EXPECT_TRUE(b.None());
  EXPECT_EQ(b.Popcount(), 0u);
}

TEST(BitmapTest, SetGetClear) {
  DynamicBitmap b(130);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Get(0));
  EXPECT_TRUE(b.Get(63));
  EXPECT_TRUE(b.Get(64));
  EXPECT_TRUE(b.Get(129));
  EXPECT_FALSE(b.Get(1));
  EXPECT_EQ(b.Popcount(), 4u);
  b.Clear(63);
  EXPECT_FALSE(b.Get(63));
  EXPECT_EQ(b.Popcount(), 3u);
}

TEST(BitmapTest, SetRangeWithinOneWord) {
  DynamicBitmap b(64);
  b.SetRange(3, 7);
  EXPECT_EQ(b.Popcount(), 4u);
  EXPECT_FALSE(b.Get(2));
  EXPECT_TRUE(b.Get(3));
  EXPECT_TRUE(b.Get(6));
  EXPECT_FALSE(b.Get(7));
}

TEST(BitmapTest, SetRangeAcrossWords) {
  DynamicBitmap b(200);
  b.SetRange(60, 140);
  EXPECT_EQ(b.Popcount(), 80u);
  EXPECT_FALSE(b.Get(59));
  EXPECT_TRUE(b.Get(60));
  EXPECT_TRUE(b.Get(139));
  EXPECT_FALSE(b.Get(140));
}

TEST(BitmapTest, SetRangeClampsToSize) {
  DynamicBitmap b(70);
  b.SetRange(65, 1000);
  EXPECT_EQ(b.Popcount(), 5u);
}

TEST(BitmapTest, SetRangeEmptyIsNoop) {
  DynamicBitmap b(64);
  b.SetRange(10, 10);
  b.SetRange(20, 5);
  EXPECT_TRUE(b.None());
}

TEST(BitmapTest, AndPopcount) {
  DynamicBitmap a(128), b(128);
  a.SetRange(0, 64);
  b.SetRange(32, 96);
  EXPECT_EQ(a.AndPopcount(b), 32u);
  EXPECT_EQ(b.AndPopcount(a), 32u);
}

TEST(BitmapTest, OrWith) {
  DynamicBitmap a(128), b(128);
  a.SetRange(0, 10);
  b.SetRange(5, 20);
  EXPECT_TRUE(a.OrWith(b));
  EXPECT_EQ(a.Popcount(), 20u);
}

TEST(BitmapTest, OrWithReturnsWhetherAnyBitIsSet) {
  DynamicBitmap a(128), b(128);
  EXPECT_FALSE(a.OrWith(b));  // both empty
  b.Set(100);
  EXPECT_TRUE(a.OrWith(b));
  DynamicBitmap c(128);
  // `a` already has bits even though `c` is empty.
  EXPECT_TRUE(a.OrWith(c));
}

TEST(BitmapTest, OrWithGrowsToLargerOperand) {
  DynamicBitmap a(64), b(200);
  a.Set(3);
  b.Set(199);
  EXPECT_TRUE(a.OrWith(b));
  EXPECT_EQ(a.num_bits(), 200u);
  EXPECT_TRUE(a.Get(3));
  EXPECT_TRUE(a.Get(199));
  EXPECT_EQ(a.Popcount(), 2u);
}

TEST(BitmapTest, OrWithShorterOperandOrsIntoPrefix) {
  DynamicBitmap a(200), b(64);
  a.Set(199);
  b.Set(3);
  EXPECT_TRUE(a.OrWith(b));
  EXPECT_EQ(a.num_bits(), 200u);  // unchanged: this side is the larger one
  EXPECT_TRUE(a.Get(3));
  EXPECT_TRUE(a.Get(199));
}

TEST(BitmapTest, OrWithGrowExtendsWithZeroBits) {
  DynamicBitmap a(10);
  a.SetRange(0, 10);
  DynamicBitmap b(500);  // empty, just longer
  EXPECT_TRUE(a.OrWith(b));
  EXPECT_EQ(a.num_bits(), 500u);
  EXPECT_EQ(a.Popcount(), 10u);
  for (size_t i = 10; i < 500; ++i) EXPECT_FALSE(a.Get(i));
}

TEST(BitmapTest, OrWithEmptyBothSidesStaysEmpty) {
  DynamicBitmap a, b;
  EXPECT_FALSE(a.OrWith(b));
  EXPECT_EQ(a.num_bits(), 0u);
}

TEST(BitmapTest, NonzeroWordIndices) {
  DynamicBitmap b(256);
  b.Set(0);
  b.Set(130);
  b.Set(255);
  std::vector<uint32_t> expected = {0, 2, 3};
  EXPECT_EQ(b.NonzeroWordIndices(), expected);
}

class BitmapRangeSweep
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(BitmapRangeSweep, SetRangeMatchesBitByBit) {
  auto [begin, end] = GetParam();
  DynamicBitmap fast(300);
  fast.SetRange(begin, end);
  DynamicBitmap slow(300);
  for (size_t i = begin; i < std::min<size_t>(end, 300); ++i) slow.Set(i);
  EXPECT_EQ(fast, slow);
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, BitmapRangeSweep,
    ::testing::Values(std::pair<size_t, size_t>{0, 1},
                      std::pair<size_t, size_t>{0, 64},
                      std::pair<size_t, size_t>{0, 65},
                      std::pair<size_t, size_t>{63, 64},
                      std::pair<size_t, size_t>{63, 65},
                      std::pair<size_t, size_t>{64, 128},
                      std::pair<size_t, size_t>{1, 299},
                      std::pair<size_t, size_t>{128, 300},
                      std::pair<size_t, size_t>{299, 300},
                      std::pair<size_t, size_t>{100, 100}));

TEST(BitmapTest, RandomizedAgainstReference) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    size_t n = 1 + rng.NextBounded(500);
    DynamicBitmap b(n);
    std::vector<bool> truth(n, false);
    for (int op = 0; op < 100; ++op) {
      size_t i = rng.NextBounded(n);
      if (rng.NextBool(0.7)) {
        b.Set(i);
        truth[i] = true;
      } else {
        b.Clear(i);
        truth[i] = false;
      }
    }
    size_t expected_pop = 0;
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(b.Get(i), truth[i]);
      expected_pop += truth[i] ? 1 : 0;
    }
    EXPECT_EQ(b.Popcount(), expected_pop);
  }
}

TEST(BitmapTest, WordSpanPopcounts) {
  const std::vector<uint64_t> a = {0xff, 0, ~uint64_t{0}, 1};
  const std::vector<uint64_t> b = {0x0f, 7, ~uint64_t{0}, 2};
  EXPECT_EQ(PopcountWords(a.data(), a.size()), 8u + 0 + 64 + 1);
  EXPECT_EQ(PopcountWords(a.data(), 0), 0u);
  EXPECT_EQ(AndPopcountWords(a.data(), b.data(), a.size()), 4u + 0 + 64 + 0);
}

TEST(BitmapTest, WordSpanPopcountsMatchBitmapOps) {
  Rng rng(1234);
  DynamicBitmap a(777), b(777);
  for (int i = 0; i < 300; ++i) {
    a.Set(rng.NextBounded(777));
    b.Set(rng.NextBounded(777));
  }
  EXPECT_EQ(PopcountWords(a.data(), a.num_words()), a.Popcount());
  EXPECT_EQ(AndPopcountWords(a.data(), b.data(), a.num_words()),
            a.AndPopcount(b));
}

}  // namespace
}  // namespace thrifty
