// Shared fixture: the tenant activities of the paper's Figure 5.1,
// reconstructed exactly from the worked example in Figures 5.1/5.3.
//
// Ten epochs t1..t10 (0-indexed 0..9 here):
//   T1 active t1-t6, T2 t7-t10, T3 t2-t4, T4 {t5,t6,t7,t9,t10},
//   T5 {t1,t2,t5,t6}, T6 {t3,t4,t5,t7,t8,t9}.
//
// This assignment reproduces every number in the paper's walkthrough:
//  * sum over {T1,T4,T5,T6} = <2,2,2,2,4,3,2,1,2,1> (§5's example), and
//    COUNT^{<=3} of it = 9;
//  * all the level-percentage transitions of Fig 5.3 panels (a)-(e);
//  * the insertion order T3, T2, T5, T4, T6 and the rejection of T1 at
//    R = 3, P = 99.9%.

#ifndef THRIFTY_TESTS_FIG51_FIXTURE_H_
#define THRIFTY_TESTS_FIG51_FIXTURE_H_

#include <vector>

#include "activity/activity_vector.h"
#include "common/bitmap.h"

namespace thrifty {
namespace testing_fixtures {

inline constexpr size_t kFig51Epochs = 10;

/// \brief 0-indexed active epochs of tenants T1..T6 (index 0 = T1).
inline const std::vector<std::vector<size_t>>& Fig51ActiveEpochs() {
  static const std::vector<std::vector<size_t>> kEpochs = {
      {0, 1, 2, 3, 4, 5},     // T1
      {6, 7, 8, 9},           // T2
      {1, 2, 3},              // T3
      {4, 5, 6, 8, 9},        // T4
      {0, 1, 4, 5},           // T5
      {2, 3, 4, 6, 7, 8},     // T6
  };
  return kEpochs;
}

/// \brief Activity vectors for T1..T6 with tenant ids 1..6.
inline std::vector<ActivityVector> Fig51Activities() {
  std::vector<ActivityVector> out;
  const auto& epochs = Fig51ActiveEpochs();
  for (size_t i = 0; i < epochs.size(); ++i) {
    DynamicBitmap bits(kFig51Epochs);
    for (size_t k : epochs[i]) bits.Set(k);
    out.push_back(ActivityVector::FromBitmap(
        static_cast<TenantId>(i + 1), bits));
  }
  return out;
}

}  // namespace testing_fixtures
}  // namespace thrifty

#endif  // THRIFTY_TESTS_FIG51_FIXTURE_H_
