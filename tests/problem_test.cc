#include "placement/problem.h"

#include <gtest/gtest.h>

#include "fig51_fixture.h"

namespace thrifty {
namespace {

using testing_fixtures::Fig51Activities;
using testing_fixtures::kFig51Epochs;

class ProblemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    activities_ = Fig51Activities();
    for (size_t i = 0; i < activities_.size(); ++i) {
      TenantSpec spec;
      spec.id = static_cast<TenantId>(i + 1);
      spec.requested_nodes = 4;
      spec.data_gb = 400;
      tenants_.push_back(spec);
    }
  }

  PackingProblem MakeProblem(int r = 3, double p = 0.999) {
    auto result = MakePackingProblem(tenants_, activities_, r, p);
    EXPECT_TRUE(result.ok()) << result.status();
    return *result;
  }

  std::vector<ActivityVector> activities_;
  std::vector<TenantSpec> tenants_;
};

TEST_F(ProblemTest, MakeProblemMatchesTenantsToVectors) {
  PackingProblem problem = MakeProblem();
  ASSERT_EQ(problem.items.size(), 6u);
  EXPECT_EQ(problem.num_epochs, kFig51Epochs);
  EXPECT_EQ(problem.TotalRequestedNodes(), 24);
  for (const auto& item : problem.items) {
    EXPECT_EQ(item.activity->tenant_id(), item.tenant_id);
  }
}

TEST_F(ProblemTest, MakeProblemFailsWithoutVector) {
  TenantSpec extra;
  extra.id = 99;
  extra.requested_nodes = 2;
  tenants_.push_back(extra);
  auto result = MakePackingProblem(tenants_, activities_, 3, 0.999);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ProblemTest, ValidateRejectsBadParameters) {
  PackingProblem problem = MakeProblem();
  problem.replication_factor = 0;
  EXPECT_FALSE(problem.Validate().ok());
  problem.replication_factor = 3;
  problem.sla_fraction = 0;
  EXPECT_FALSE(problem.Validate().ok());
  problem.sla_fraction = 1.5;
  EXPECT_FALSE(problem.Validate().ok());
  problem.sla_fraction = 0.999;
  EXPECT_TRUE(problem.Validate().ok());
}

TEST_F(ProblemTest, ValidateRejectsDuplicateTenants) {
  PackingProblem problem = MakeProblem();
  problem.items.push_back(problem.items[0]);
  EXPECT_EQ(problem.Validate().code(), StatusCode::kInvalidArgument);
}

TEST_F(ProblemTest, VerifyAcceptsFeasibleSolution) {
  PackingProblem problem = MakeProblem();
  GroupingSolution solution;
  TenantGroupResult g1;
  g1.tenant_ids = {2, 3, 4, 5, 6};
  g1.max_nodes = 4;
  TenantGroupResult g2;
  g2.tenant_ids = {1};
  g2.max_nodes = 4;
  solution.groups = {g1, g2};
  EXPECT_TRUE(VerifySolution(problem, solution).ok());
}

TEST_F(ProblemTest, VerifyRejectsInfeasibleGroup) {
  PackingProblem problem = MakeProblem(/*r=*/3, /*p=*/0.999);
  GroupingSolution solution;
  TenantGroupResult g;
  g.tenant_ids = {1, 2, 3, 4, 5, 6};  // all six: TTP(3) = 0.9 < 0.999
  g.max_nodes = 4;
  solution.groups = {g};
  EXPECT_EQ(VerifySolution(problem, solution).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ProblemTest, VerifyRejectsMissingOrDuplicateTenants) {
  PackingProblem problem = MakeProblem();
  GroupingSolution missing;
  TenantGroupResult g;
  g.tenant_ids = {1, 2};
  g.max_nodes = 4;
  missing.groups = {g};
  EXPECT_FALSE(VerifySolution(problem, missing).ok());

  GroupingSolution duplicate;
  TenantGroupResult g1, g2;
  g1.tenant_ids = {1, 2, 3};
  g1.max_nodes = 4;
  g2.tenant_ids = {3, 4, 5, 6};
  g2.max_nodes = 4;
  duplicate.groups = {g1, g2};
  EXPECT_FALSE(VerifySolution(problem, duplicate).ok());
}

TEST_F(ProblemTest, AnnotateFillsStats) {
  PackingProblem problem = MakeProblem();
  GroupingSolution solution;
  TenantGroupResult g;
  g.tenant_ids = {2, 3, 4, 5, 6};
  solution.groups = {g};
  TenantGroupResult g2;
  g2.tenant_ids = {1};
  solution.groups.push_back(g2);
  ASSERT_TRUE(AnnotateSolution(problem, &solution).ok());
  EXPECT_EQ(solution.groups[0].max_nodes, 4);
  EXPECT_EQ(solution.groups[0].max_active, 3);
  EXPECT_DOUBLE_EQ(solution.groups[0].ttp, 1.0);
  EXPECT_EQ(solution.groups[1].max_active, 1);
}

TEST_F(ProblemTest, SolutionCostAndEffectiveness) {
  GroupingSolution solution;
  TenantGroupResult g1, g2;
  g1.tenant_ids = {1, 2, 3};
  g1.max_nodes = 4;
  g2.tenant_ids = {4, 5};
  g2.max_nodes = 8;
  solution.groups = {g1, g2};
  EXPECT_EQ(solution.NodesUsed(3), 3 * 4 + 3 * 8);
  EXPECT_DOUBLE_EQ(solution.ConsolidationEffectiveness(3, 100), 1.0 - 0.36);
  EXPECT_DOUBLE_EQ(solution.AverageGroupSize(), 2.5);
}

}  // namespace
}  // namespace thrifty
