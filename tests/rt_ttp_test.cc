#include "scaling/rt_ttp_monitor.h"

#include <gtest/gtest.h>

namespace thrifty {
namespace {

TEST(RtTtpTest, NoActivityIsPerfect) {
  RtTtpMonitor monitor(3);
  EXPECT_DOUBLE_EQ(monitor.RtTtp(25 * kHour), 1.0);
  EXPECT_EQ(monitor.current_count(), 0);
}

TEST(RtTtpTest, CountsWithinThresholdKeepTtpAtOne) {
  RtTtpMonitor monitor(3);
  monitor.OnActiveCountChange(1 * kHour, 2);
  monitor.OnActiveCountChange(2 * kHour, 3);
  monitor.OnActiveCountChange(3 * kHour, 0);
  EXPECT_DOUBLE_EQ(monitor.RtTtp(25 * kHour), 1.0);
}

TEST(RtTtpTest, TimeAboveThresholdReducesTtp) {
  RtTtpMonitor monitor(3, 24 * kHour);
  monitor.OnActiveCountChange(0, 4);            // above R
  monitor.OnActiveCountChange(6 * kHour, 2);    // back below
  // At now = 24 h: 6 of 24 hours above -> RT-TTP = 75%.
  EXPECT_NEAR(monitor.RtTtp(24 * kHour), 0.75, 1e-9);
}

TEST(RtTtpTest, SlidingWindowForgetsOldBreaches) {
  RtTtpMonitor monitor(3, 24 * kHour);
  monitor.OnActiveCountChange(0, 5);
  monitor.OnActiveCountChange(1 * kHour, 1);
  // Breach fully inside window at t = 24 h.
  EXPECT_NEAR(monitor.RtTtp(24 * kHour), 23.0 / 24, 1e-9);
  // Half slid out at t = 24.5 h.
  EXPECT_NEAR(monitor.RtTtp(24 * kHour + 30 * kMinute), 23.5 / 24, 1e-9);
  // Fully slid out at t = 25 h.
  EXPECT_NEAR(monitor.RtTtp(25 * kHour), 1.0, 1e-9);
}

TEST(RtTtpTest, OngoingBreachCountsUpToNow) {
  RtTtpMonitor monitor(1, 10 * kHour);
  monitor.OnActiveCountChange(0, 2);
  // Still above threshold; at t = 5 h half the window (with pre-history as
  // zero) is above.
  EXPECT_NEAR(monitor.RtTtp(5 * kHour), 0.5, 1e-9);
  EXPECT_EQ(monitor.current_count(), 2);
}

TEST(RtTtpTest, FractionAboveGeneralThreshold) {
  RtTtpMonitor monitor(3, 10 * kHour);
  monitor.OnActiveCountChange(0, 1);
  monitor.OnActiveCountChange(2 * kHour, 2);
  monitor.OnActiveCountChange(4 * kHour, 0);
  SimTime now = 10 * kHour;
  EXPECT_NEAR(monitor.FractionAbove(now, 0), 0.4, 1e-9);
  EXPECT_NEAR(monitor.FractionAbove(now, 1), 0.2, 1e-9);
  EXPECT_NEAR(monitor.FractionAbove(now, 2), 0.0, 1e-9);
}

TEST(RtTtpTest, RedundantUpdatesCollapse) {
  RtTtpMonitor monitor(2, 10 * kHour);
  monitor.OnActiveCountChange(1 * kHour, 3);
  monitor.OnActiveCountChange(2 * kHour, 3);  // no change
  monitor.OnActiveCountChange(3 * kHour, 1);
  EXPECT_NEAR(monitor.FractionAbove(10 * kHour, 2), 0.2, 1e-9);
}

TEST(RtTtpTest, SameTimestampRewrite) {
  RtTtpMonitor monitor(2, 10 * kHour);
  monitor.OnActiveCountChange(1 * kHour, 3);
  monitor.OnActiveCountChange(1 * kHour, 1);  // transition at same instant
  EXPECT_NEAR(monitor.RtTtp(10 * kHour), 1.0, 1e-9);
  EXPECT_EQ(monitor.current_count(), 1);
}

TEST(RtTtpTest, PruningKeepsStraddlingSegment) {
  RtTtpMonitor monitor(0, 1 * kHour);
  // A long-past segment that still covers the window start must survive.
  monitor.OnActiveCountChange(0, 1);
  for (int h = 1; h <= 50; ++h) {
    monitor.OnActiveCountChange(h * kHour, h % 2 == 0 ? 1 : 2);
  }
  // Whole window above threshold 0 regardless of pruning.
  EXPECT_NEAR(monitor.FractionAbove(50 * kHour + 30 * kMinute, 0), 1.0, 1e-9);
}

TEST(RtTtpTest, ThePaper43MinuteGracePeriodExample) {
  // §5.1: at P = 99.9%, one month gives ~43 minutes of grace period.
  double month_ms = 30.0 * kDay;
  double grace_minutes = month_ms * 0.001 / kMinute;
  EXPECT_NEAR(grace_minutes, 43.2, 0.5);
}

}  // namespace
}  // namespace thrifty
