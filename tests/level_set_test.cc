#include "activity/level_set.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fig51_fixture.h"

namespace thrifty {
namespace {

using testing_fixtures::Fig51Activities;
using testing_fixtures::kFig51Epochs;

ActivityVector MakeVector(TenantId id, size_t num_epochs,
                          std::vector<size_t> active) {
  DynamicBitmap bits(num_epochs);
  for (size_t k : active) bits.Set(k);
  return ActivityVector::FromBitmap(id, bits);
}

TEST(LevelSetTest, EmptyGroup) {
  GroupLevelSet g(10);
  EXPECT_EQ(g.num_tenants(), 0);
  EXPECT_EQ(g.MaxActive(), 0);
  EXPECT_EQ(g.Ttp(0), 1.0);
  EXPECT_EQ(g.Ttp(3), 1.0);
  EXPECT_EQ(g.CountAtLeast(1), 0u);
  EXPECT_EQ(g.CountAtMost(0), 10u);
}

TEST(LevelSetTest, SingleTenant) {
  GroupLevelSet g(10);
  g.Add(MakeVector(1, 10, {0, 1, 2}));
  EXPECT_EQ(g.num_tenants(), 1);
  EXPECT_EQ(g.MaxActive(), 1);
  EXPECT_EQ(g.CountAtLeast(1), 3u);
  EXPECT_EQ(g.CountAtMost(0), 7u);
  EXPECT_DOUBLE_EQ(g.Ttp(0), 0.7);
  EXPECT_DOUBLE_EQ(g.Ttp(1), 1.0);
}

TEST(LevelSetTest, OverlapCreatesLevels) {
  GroupLevelSet g(10);
  g.Add(MakeVector(1, 10, {0, 1, 2}));
  g.Add(MakeVector(2, 10, {2, 3}));
  g.Add(MakeVector(3, 10, {2}));
  EXPECT_EQ(g.MaxActive(), 3);
  EXPECT_EQ(g.CountAtLeast(1), 4u);  // epochs 0,1,2,3
  EXPECT_EQ(g.CountAtLeast(2), 1u);  // epoch 2
  EXPECT_EQ(g.CountAtLeast(3), 1u);
  EXPECT_EQ(g.CountAtLeast(4), 0u);
  auto fractions = g.ExactLevelFractions();
  ASSERT_EQ(fractions.size(), 3u);
  EXPECT_DOUBLE_EQ(fractions[0], 0.3);  // exactly 1 active: 0,1,3
  EXPECT_DOUBLE_EQ(fractions[1], 0.0);  // exactly 2: none
  EXPECT_DOUBLE_EQ(fractions[2], 0.1);  // exactly 3: epoch 2
}

TEST(LevelSetTest, PaperCountExample) {
  // §5: sum of {T1,T4,T5,T6} = <2,2,2,2,4,3,2,1,2,1>; COUNT^{<=3} = 9.
  auto tenants = Fig51Activities();
  GroupLevelSet g(kFig51Epochs);
  g.Add(tenants[0]);  // T1
  g.Add(tenants[3]);  // T4
  g.Add(tenants[4]);  // T5
  g.Add(tenants[5]);  // T6
  EXPECT_EQ(g.CountAtMost(3), 9u);
  EXPECT_EQ(g.MaxActive(), 4);
  EXPECT_DOUBLE_EQ(g.Ttp(3), 0.9);
}

TEST(LevelSetTest, Fig53PanelEGroupLevels) {
  // Panel (e): {T2..T6} has 1-active 10%, 2-active 60%, 3-active 30%.
  auto tenants = Fig51Activities();
  GroupLevelSet g(kFig51Epochs);
  for (size_t i = 1; i <= 5; ++i) g.Add(tenants[i]);
  auto fractions = g.ExactLevelFractions();
  ASSERT_EQ(fractions.size(), 3u);
  EXPECT_DOUBLE_EQ(fractions[0], 0.1);
  EXPECT_DOUBLE_EQ(fractions[1], 0.6);
  EXPECT_DOUBLE_EQ(fractions[2], 0.3);
  EXPECT_DOUBLE_EQ(g.Ttp(3), 1.0);
}

TEST(LevelSetTest, Fig53PanelEAddingT1) {
  // Panel (e): adding T1 gives 0%/30%/60%/10% and TTP(3) drops to 90%.
  auto tenants = Fig51Activities();
  GroupLevelSet g(kFig51Epochs);
  for (size_t i = 1; i <= 5; ++i) g.Add(tenants[i]);

  auto pops = g.EvaluateAdd(tenants[0]);
  EXPECT_DOUBLE_EQ(g.TtpFromPopcounts(pops, 3), 0.9);

  g.Add(tenants[0]);
  auto fractions = g.ExactLevelFractions();
  ASSERT_EQ(fractions.size(), 4u);
  EXPECT_DOUBLE_EQ(fractions[0], 0.0);
  EXPECT_DOUBLE_EQ(fractions[1], 0.3);
  EXPECT_DOUBLE_EQ(fractions[2], 0.6);
  EXPECT_DOUBLE_EQ(fractions[3], 0.1);
  EXPECT_DOUBLE_EQ(g.Ttp(3), 0.9);
}

TEST(LevelSetTest, EvaluateAddMatchesActualAdd) {
  auto tenants = Fig51Activities();
  GroupLevelSet g(kFig51Epochs);
  for (size_t i = 0; i < tenants.size(); ++i) {
    auto predicted = g.EvaluateAdd(tenants[i]);
    g.Add(tenants[i]);
    EXPECT_EQ(predicted, g.level_popcounts()) << "adding tenant " << i + 1;
  }
}

TEST(LevelSetTest, RemoveInvertsAdd) {
  auto tenants = Fig51Activities();
  GroupLevelSet g(kFig51Epochs);
  g.Add(tenants[1]);
  g.Add(tenants[2]);
  auto before = g.level_popcounts();
  g.Add(tenants[0]);
  ASSERT_TRUE(g.Remove(tenants[0]).ok());
  EXPECT_EQ(g.level_popcounts(), before);
  EXPECT_EQ(g.num_tenants(), 2);
}

TEST(LevelSetTest, RemoveFromEmptyFails) {
  GroupLevelSet g(10);
  EXPECT_EQ(g.Remove(MakeVector(1, 10, {0})).code(),
            StatusCode::kFailedPrecondition);
}

TEST(LevelSetTest, RemoveAllTenantsDrainsLevels) {
  auto tenants = Fig51Activities();
  GroupLevelSet g(kFig51Epochs);
  for (const auto& t : tenants) g.Add(t);
  for (const auto& t : tenants) ASSERT_TRUE(g.Remove(t).ok());
  EXPECT_EQ(g.num_tenants(), 0);
  EXPECT_EQ(g.MaxActive(), 0);
  EXPECT_EQ(g.CountAtLeast(1), 0u);
}

// Property test: levels match a brute-force per-epoch counting reference
// under random adds and removes, across epoch counts that exercise word
// boundaries.
class LevelSetRandomized : public ::testing::TestWithParam<size_t> {};

TEST_P(LevelSetRandomized, MatchesBruteForce) {
  const size_t num_epochs = GetParam();
  Rng rng(num_epochs * 7919 + 13);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<ActivityVector> pool;
    for (TenantId id = 0; id < 12; ++id) {
      DynamicBitmap bits(num_epochs);
      // Bursty activity: a few contiguous runs, like office hours.
      int runs = static_cast<int>(rng.NextInt(0, 4));
      for (int r = 0; r < runs; ++r) {
        size_t begin = rng.NextBounded(num_epochs);
        size_t len = 1 + rng.NextBounded(num_epochs / 3 + 1);
        bits.SetRange(begin, begin + len);
      }
      pool.push_back(ActivityVector::FromBitmap(id, bits));
    }

    GroupLevelSet g(num_epochs);
    std::vector<int> counts(num_epochs, 0);
    std::vector<bool> in_group(pool.size(), false);
    for (int op = 0; op < 40; ++op) {
      size_t pick = rng.NextBounded(pool.size());
      if (!in_group[pick]) {
        // Check EvaluateAdd against the post-add truth before mutating.
        auto predicted = g.EvaluateAdd(pool[pick]);
        g.Add(pool[pick]);
        EXPECT_EQ(predicted, g.level_popcounts());
        in_group[pick] = true;
        for (size_t k = 0; k < num_epochs; ++k) {
          counts[k] += pool[pick].Get(k) ? 1 : 0;
        }
      } else {
        ASSERT_TRUE(g.Remove(pool[pick]).ok());
        in_group[pick] = false;
        for (size_t k = 0; k < num_epochs; ++k) {
          counts[k] -= pool[pick].Get(k) ? 1 : 0;
        }
      }
      // Verify all level popcounts against brute force.
      int max_count = 0;
      for (int c : counts) max_count = std::max(max_count, c);
      ASSERT_EQ(g.MaxActive(), max_count);
      for (int m = 1; m <= max_count + 1; ++m) {
        size_t expected = 0;
        for (int c : counts) expected += c >= m ? 1 : 0;
        ASSERT_EQ(g.CountAtLeast(m), expected)
            << "level " << m << " epochs " << num_epochs;
      }
      for (int r = 0; r <= max_count; ++r) {
        size_t expected = 0;
        for (int c : counts) expected += c <= r ? 1 : 0;
        ASSERT_EQ(g.CountAtMost(r), expected);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(EpochCounts, LevelSetRandomized,
                         ::testing::Values(10, 63, 64, 65, 128, 200, 1000));

// Property test: EvaluateAdd against a naive per-epoch recount of the
// would-be group, without mutating the set. Candidates always include the
// two degenerate vectors the grouping loop can feed it — all-zero (a tenant
// with no activity) and full (active in every epoch).
TEST(LevelSetTest, EvaluateAddMatchesNaiveRecount) {
  for (size_t num_epochs : {10u, 64u, 130u}) {
    Rng rng(num_epochs * 104729 + 7);
    for (int trial = 0; trial < 8; ++trial) {
      GroupLevelSet g(num_epochs);
      std::vector<int> counts(num_epochs, 0);
      int members = static_cast<int>(rng.NextInt(0, 8));
      for (int t = 0; t < members; ++t) {
        DynamicBitmap bits(num_epochs);
        int runs = static_cast<int>(rng.NextInt(0, 3));
        for (int r = 0; r < runs; ++r) {
          size_t begin = rng.NextBounded(num_epochs);
          bits.SetRange(begin, begin + 1 + rng.NextBounded(num_epochs / 2));
        }
        ActivityVector v =
            ActivityVector::FromBitmap(static_cast<TenantId>(t), bits);
        g.Add(v);
        for (size_t k = 0; k < num_epochs; ++k) counts[k] += bits.Get(k);
      }

      std::vector<ActivityVector> candidates;
      for (int c = 0; c < 5; ++c) {
        DynamicBitmap bits(num_epochs);
        int runs = static_cast<int>(rng.NextInt(0, 3));
        for (int r = 0; r < runs; ++r) {
          size_t begin = rng.NextBounded(num_epochs);
          bits.SetRange(begin, begin + 1 + rng.NextBounded(num_epochs / 2));
        }
        candidates.push_back(ActivityVector::FromBitmap(100 + c, bits));
      }
      DynamicBitmap zero(num_epochs);
      candidates.push_back(ActivityVector::FromBitmap(200, zero));
      DynamicBitmap full(num_epochs);
      full.SetRange(0, num_epochs);
      candidates.push_back(ActivityVector::FromBitmap(201, full));

      for (const auto& cand : candidates) {
        int max_count = 0;
        std::vector<int> would_be(counts);
        for (size_t k = 0; k < num_epochs; ++k) {
          would_be[k] += cand.Get(k) ? 1 : 0;
          max_count = std::max(max_count, would_be[k]);
        }
        std::vector<size_t> expected(static_cast<size_t>(max_count), 0);
        for (int c : would_be) {
          for (int m = 1; m <= c; ++m) ++expected[m - 1];
        }
        EXPECT_EQ(g.EvaluateAdd(cand), expected)
            << "epochs " << num_epochs << " trial " << trial << " candidate "
            << cand.tenant_id();
      }
    }
  }
}

TEST(LevelSetTest, EvaluateAddAllZeroCandidateOnEmptyGroupIsEmpty) {
  GroupLevelSet g(64);
  DynamicBitmap zero(64);
  EXPECT_TRUE(g.EvaluateAdd(ActivityVector::FromBitmap(1, zero)).empty());
  DynamicBitmap full(64);
  full.SetRange(0, 64);
  EXPECT_EQ(g.EvaluateAdd(ActivityVector::FromBitmap(2, full)),
            (std::vector<size_t>{64}));
}

}  // namespace
}  // namespace thrifty
