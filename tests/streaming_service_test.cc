// Streaming service unit tests: controller dynamics, ingest validation,
// clock sources, and small end-to-end replay identity.

#include "service/streaming_service.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "sim/engine.h"

namespace thrifty {
namespace {

TEST(SlaBudgetControllerTest, HoldsWithoutFeedback) {
  SlaBudgetController controller{SlaControllerOptions{}};
  double initial = controller.sla_fraction();
  controller.Observe(0, 0);
  controller.Observe(0, 0);
  EXPECT_EQ(controller.sla_fraction(), initial);
  ASSERT_EQ(controller.trajectory().size(), 2u);
  EXPECT_EQ(controller.trajectory()[0], initial);
  EXPECT_EQ(controller.trajectory()[1], initial);
}

TEST(SlaBudgetControllerTest, TightensOnHighViolationRate) {
  SlaControllerOptions options;
  SlaBudgetController controller{options};
  controller.Observe(1000, 1000);  // 100% violations, way over target
  EXPECT_GT(controller.sla_fraction(), options.initial_sla_fraction);
  EXPECT_LE(controller.sla_fraction(), options.max_sla_fraction);
}

TEST(SlaBudgetControllerTest, RelaxesOnZeroViolations) {
  SlaControllerOptions options;
  SlaBudgetController controller{options};
  controller.Observe(1000, 0);
  EXPECT_LT(controller.sla_fraction(), options.initial_sla_fraction);
  EXPECT_GE(controller.sla_fraction(), options.min_sla_fraction);
}

TEST(SlaBudgetControllerTest, ClampsToConfiguredBand) {
  SlaControllerOptions options;
  options.gain = 100.0;  // huge steps, must still stay in band
  SlaBudgetController controller{options};
  for (int i = 0; i < 5; ++i) controller.Observe(100, 100);
  EXPECT_EQ(controller.sla_fraction(), options.max_sla_fraction);
  for (int i = 0; i < 5; ++i) controller.Observe(100, 0);
  EXPECT_EQ(controller.sla_fraction(), options.min_sla_fraction);
}

TEST(SlaBudgetControllerTest, TrajectoryFingerprintTracksObservations) {
  SlaBudgetController a{SlaControllerOptions{}};
  SlaBudgetController b{SlaControllerOptions{}};
  SlaBudgetController c{SlaControllerOptions{}};
  for (int i = 0; i < 3; ++i) {
    a.Observe(1000, 25);
    b.Observe(1000, 25);
    c.Observe(1000, 15);
  }
  EXPECT_EQ(a.TrajectoryFingerprint(), b.TrajectoryFingerprint());
  EXPECT_NE(a.TrajectoryFingerprint(), c.TrajectoryFingerprint());
}

TEST(ClockSourceTest, VirtualClockIsMonotone) {
  VirtualClock clock(100);
  EXPECT_EQ(clock.Now(), 100);
  clock.AdvanceTo(50);  // into the past: ignored
  EXPECT_EQ(clock.Now(), 100);
  clock.AdvanceTo(500);
  EXPECT_EQ(clock.Now(), 500);
  clock.Advance(-10);  // negative delta: ignored
  EXPECT_EQ(clock.Now(), 500);
  clock.Advance(10);
  EXPECT_EQ(clock.Now(), 510);
}

TEST(ClockSourceTest, WallClockNeverDecreases) {
  WallClock clock;
  SimTime a = clock.Now();
  SimTime b = clock.Now();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
}

TEST(ClockSourceTest, SimEngineClockTracksEngine) {
  SimEngine engine;
  SimEngineClock clock(&engine);
  EXPECT_EQ(clock.Now(), 0);
  engine.ScheduleAt(12345, [](SimTime) {});
  engine.Run();
  EXPECT_EQ(clock.Now(), 12345);
}

// --- Service fixtures -------------------------------------------------

TenantSpec MakeTenant(TenantId id, int nodes) {
  TenantSpec spec;
  spec.id = id;
  spec.requested_nodes = nodes;
  spec.data_gb = nodes * kDataGbPerNode;
  return spec;
}

/// A sparse synthetic day of activity: one minute-long query per hour,
/// phase-shifted per tenant so members overlap little.
std::vector<QueryLogEntry> SparseDay(TenantId id) {
  std::vector<QueryLogEntry> entries;
  for (int h = 0; h < 24; ++h) {
    SimTime submit = h * kHour + (id % 7) * 5 * kMinute;
    entries.push_back({submit, 0, kMinute, -1});
  }
  return entries;
}

StreamingServiceOptions SmallOptions() {
  StreamingServiceOptions options;
  options.reconsolidation.advisor.replication_factor = 2;
  options.reconsolidation.activity_delta_threshold = 0.003;
  options.history_begin = 0;
  options.history_end = kDay;
  options.cycle_period = kHour;
  return options;
}

Status RegisterTenants(StreamingService* service, SimTime t,
                       const std::vector<TenantSpec>& specs) {
  for (const TenantSpec& spec : specs) {
    THRIFTY_RETURN_NOT_OK(
        service->Ingest(MakeRegisterEvent(t, spec, SparseDay(spec.id))));
  }
  return Status::OK();
}

TEST(StreamingServiceTest, RejectsDuplicateRegistration) {
  StreamingService service(SmallOptions());
  ASSERT_TRUE(RegisterTenants(&service, 0, {MakeTenant(1, 2)}).ok());
  Status st = service.Ingest(MakeRegisterEvent(1, MakeTenant(1, 2), {}));
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(service.event_log().size(), 1u);  // rejected event not appended
}

TEST(StreamingServiceTest, RejectsUnknownTenantEvents) {
  StreamingService service(SmallOptions());
  EXPECT_EQ(service.Ingest(MakeDeregisterEvent(0, 77)).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service.Ingest(MakeActivityDriftEvent(0, 77, 2)).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service.Ingest(MakeGroupFailureEvent(0, 3)).code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(service.event_log().empty());
}

TEST(StreamingServiceTest, RejectsTimeRegression) {
  StreamingService service(SmallOptions());
  ASSERT_TRUE(RegisterTenants(&service, 100, {MakeTenant(1, 2)}).ok());
  Status st = service.Ingest(MakeDeregisterEvent(50, 1));
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("regresses"), std::string::npos);
}

TEST(StreamingServiceTest, RejectsOverfullSlaReport) {
  StreamingService service(SmallOptions());
  EXPECT_EQ(service.Ingest(MakeSlaReportEvent(0, 10, 11)).code(),
            StatusCode::kInvalidArgument);
}

TEST(StreamingServiceTest, DeregisterOfPendingRegistrationCancels) {
  StreamingService service(SmallOptions());
  ASSERT_TRUE(
      RegisterTenants(&service, 0, {MakeTenant(1, 2), MakeTenant(2, 2)}).ok());
  ASSERT_TRUE(service.Ingest(MakeDeregisterEvent(1, 2)).ok());
  ASSERT_TRUE(service.Ingest(MakeCycleMarkEvent(kHour)).ok());
  std::vector<TenantSpec> specs = service.RegisteredSpecs();
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].id, 1);
  // Both events stay in the log; replay reproduces the cancellation.
  EXPECT_EQ(service.event_log().size(), 4u);
  auto replay = StreamingService::Replay(service.EncodeLog(), SmallOptions());
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_EQ(replay->DecisionFingerprint(), service.DecisionFingerprint());
}

TEST(StreamingServiceTest, ConsolidatesRegisteredTenants) {
  StreamingService service(SmallOptions());
  std::vector<TenantSpec> specs;
  for (TenantId id = 0; id < 6; ++id) specs.push_back(MakeTenant(id, 2));
  ASSERT_TRUE(RegisterTenants(&service, 0, specs).ok());
  ASSERT_TRUE(service.Ingest(MakeCycleMarkEvent(kHour)).ok());

  ASSERT_EQ(service.decisions().size(), 1u);
  const CycleDecision& decision = service.decisions()[0];
  EXPECT_EQ(decision.cycle, 0u);
  EXPECT_EQ(decision.time, kHour);
  EXPECT_EQ(decision.events_consumed, 7u);
  EXPECT_EQ(decision.plan_fingerprint, PlanFingerprint(service.current_plan()));

  // Every tenant placed exactly once.
  size_t placed = 0;
  for (const auto& group : service.current_plan().groups) {
    placed += group.tenants.size();
    EXPECT_TRUE(service.current_plan().GroupOf(group.tenants[0].id).ok());
  }
  EXPECT_EQ(placed, specs.size());
}

TEST(StreamingServiceTest, ChurnCyclesReplayByteIdentically) {
  StreamingService service(SmallOptions());
  std::vector<TenantSpec> specs;
  for (TenantId id = 0; id < 6; ++id) specs.push_back(MakeTenant(id, 2));
  ASSERT_TRUE(RegisterTenants(&service, 0, specs).ok());
  ASSERT_TRUE(service.Ingest(MakeCycleMarkEvent(kHour)).ok());
  // Cycle 1: one out, one in, one drifted, feedback.
  ASSERT_TRUE(service.Ingest(MakeDeregisterEvent(kHour + 1, 3)).ok());
  ASSERT_TRUE(
      service
          .Ingest(MakeRegisterEvent(kHour + 2, MakeTenant(9, 2), SparseDay(9)))
          .ok());
  ASSERT_TRUE(service.Ingest(MakeActivityDriftEvent(kHour + 3, 1, 2)).ok());
  ASSERT_TRUE(service.Ingest(MakeSlaReportEvent(kHour + 4, 500, 25)).ok());
  ASSERT_TRUE(service.Ingest(MakeCycleMarkEvent(2 * kHour)).ok());
  ASSERT_EQ(service.decisions().size(), 2u);

  std::string encoded = service.EncodeLog();
  auto replay = StreamingService::Replay(encoded, SmallOptions());
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_EQ(replay->EncodeLog(), encoded);
  EXPECT_EQ(replay->DecisionFingerprint(), service.DecisionFingerprint());
  EXPECT_EQ(replay->controller().TrajectoryFingerprint(),
            service.controller().TrajectoryFingerprint());
  EXPECT_EQ(PlanFingerprint(replay->current_plan()),
            PlanFingerprint(service.current_plan()));
  EXPECT_EQ(replay->min_sla_fraction(), service.min_sla_fraction());

  // The de-registered tenant is gone, the fresh one placed.
  EXPECT_FALSE(service.current_plan().GroupOf(3).ok());
  EXPECT_TRUE(service.current_plan().GroupOf(9).ok());
}

TEST(StreamingServiceTest, SolverJobsDoNotChangeDecisions) {
  std::vector<uint64_t> fingerprints;
  for (int jobs : {1, 2, 4}) {
    StreamingServiceOptions options = SmallOptions();
    options.reconsolidation.advisor.solver_jobs = jobs;
    StreamingService service(options);
    std::vector<TenantSpec> specs;
    for (TenantId id = 0; id < 8; ++id) specs.push_back(MakeTenant(id, 2));
    ASSERT_TRUE(RegisterTenants(&service, 0, specs).ok());
    ASSERT_TRUE(service.Ingest(MakeCycleMarkEvent(kHour)).ok());
    ASSERT_TRUE(service.Ingest(MakeDeregisterEvent(kHour + 1, 2)).ok());
    ASSERT_TRUE(service.Ingest(MakeCycleMarkEvent(2 * kHour)).ok());
    fingerprints.push_back(service.DecisionFingerprint());
  }
  EXPECT_EQ(fingerprints[0], fingerprints[1]);
  EXPECT_EQ(fingerprints[0], fingerprints[2]);
}

TEST(StreamingServiceTest, TickRequiresClock) {
  StreamingService service(SmallOptions());
  auto ran = service.Tick();
  ASSERT_FALSE(ran.ok());
  EXPECT_EQ(ran.status().code(), StatusCode::kFailedPrecondition);
}

TEST(StreamingServiceTest, TickHonorsCyclePeriod) {
  StreamingService service(SmallOptions());
  VirtualClock clock;
  service.AttachClock(&clock);
  ASSERT_TRUE(RegisterTenants(&service, 0, {MakeTenant(1, 2)}).ok());

  auto first = service.Tick();  // no cycle ran yet: fires immediately
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_TRUE(*first);
  ASSERT_EQ(service.decisions().size(), 1u);

  auto too_soon = service.Tick();  // period not yet elapsed
  ASSERT_TRUE(too_soon.ok()) << too_soon.status();
  EXPECT_FALSE(*too_soon);

  clock.AdvanceTo(kHour);
  auto due = service.Tick();
  ASSERT_TRUE(due.ok()) << due.status();
  EXPECT_TRUE(*due);
  EXPECT_EQ(service.decisions().size(), 2u);
  EXPECT_EQ(service.decisions()[1].time, kHour);
}

}  // namespace
}  // namespace thrifty
