#include "core/service.h"

#include <gtest/gtest.h>

#include "core/thrifty.h"

namespace thrifty {
namespace {

class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest()
      : cluster_(32, &engine_), catalog_(QueryCatalog::Default()) {}

  DeploymentPlan TwoGroupPlan() {
    DeploymentPlan plan;
    plan.replication_factor = 2;
    plan.sla_fraction = 0.999;
    for (GroupId g = 0; g < 2; ++g) {
      GroupDeployment group;
      group.group_id = g;
      for (int i = 0; i < 3; ++i) {
        TenantSpec spec;
        spec.id = g * 3 + i;
        spec.requested_nodes = 4;
        spec.data_gb = 400;
        group.tenants.push_back(spec);
      }
      group.cluster.mppdb_nodes = {4, 4};
      plan.groups.push_back(group);
    }
    return plan;
  }

  ThriftyService MakeService(bool scaling = false) {
    ServiceOptions options;
    options.replication_factor = 2;
    options.elastic_scaling = scaling;
    return ThriftyService(&engine_, &cluster_, &catalog_, options);
  }

  SimEngine engine_;
  Cluster cluster_;
  QueryCatalog catalog_;
};

TEST_F(ServiceTest, DeployStartsInstancesAndRegistersTenants) {
  ThriftyService service = MakeService();
  ASSERT_TRUE(service.Deploy(TwoGroupPlan()).ok());
  EXPECT_EQ(cluster_.nodes_in_use(), 16);  // 2 groups x 2 MPPDBs x 4 nodes
  EXPECT_EQ(cluster_.LiveInstances().size(), 4u);
  auto info = service.TenantInfo(4);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ((*info)->requested_nodes, 4);
  EXPECT_FALSE(service.TenantInfo(42).ok());
}

TEST_F(ServiceTest, DoubleDeployFails) {
  ThriftyService service = MakeService();
  ASSERT_TRUE(service.Deploy(TwoGroupPlan()).ok());
  EXPECT_EQ(service.Deploy(TwoGroupPlan()).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ServiceTest, ReplicationMismatchRejected) {
  ServiceOptions options;
  options.replication_factor = 3;  // plan says 2
  ThriftyService service(&engine_, &cluster_, &catalog_, options);
  EXPECT_EQ(service.Deploy(TwoGroupPlan()).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ServiceTest, SubmitBeforeDeployFails) {
  ThriftyService service = MakeService();
  EXPECT_EQ(service.SubmitQuery(0, 0).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ServiceTest, SingleQueryMeetsSlaExactly) {
  ThriftyService service = MakeService();
  ASSERT_TRUE(service.Deploy(TwoGroupPlan()).ok());
  std::vector<QueryOutcome> outcomes;
  service.set_completion_hook(
      [&](const QueryOutcome& o) { outcomes.push_back(o); });
  auto result = service.SubmitQuery(0, *catalog_.FindByName("TPCH-Q1"));
  ASSERT_TRUE(result.ok());
  engine_.Run();
  ASSERT_EQ(outcomes.size(), 1u);
  // Group instance size == requested size and the tenant ran alone:
  // exactly isolated speed.
  EXPECT_NEAR(outcomes[0].NormalizedPerformance(), 1.0, 1e-6);
  EXPECT_EQ(service.metrics().completed, 1u);
  EXPECT_EQ(service.metrics().sla_met, 1u);
}

TEST_F(ServiceTest, BatchOfOwnQueriesStillMeetsSla) {
  // A tenant's own MPL > 1 slows its queries on the shared instance AND on
  // the isolated counterfactual equally: normalized stays 1.0 (§4.4: load
  // within a tenant is the tenant's own issue).
  ThriftyService service = MakeService();
  ASSERT_TRUE(service.Deploy(TwoGroupPlan()).ok());
  TemplateId q1 = *catalog_.FindByName("TPCH-Q1");
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(service.SubmitQuery(0, q1).ok());
  }
  engine_.Run();
  EXPECT_EQ(service.metrics().completed, 4u);
  EXPECT_EQ(service.metrics().sla_met, 4u);
}

TEST_F(ServiceTest, UnknownTenantRejected) {
  ThriftyService service = MakeService();
  ASSERT_TRUE(service.Deploy(TwoGroupPlan()).ok());
  EXPECT_EQ(service.SubmitQuery(77, 0).status().code(),
            StatusCode::kNotFound);
}

TEST_F(ServiceTest, ReplayDrivesQueriesAtLoggedTimes) {
  ThriftyService service = MakeService();
  ASSERT_TRUE(service.Deploy(TwoGroupPlan()).ok());
  TenantLog log;
  log.tenant_id = 1;
  for (int i = 0; i < 5; ++i) {
    QueryLogEntry entry;
    entry.submit_time = (i + 1) * 10 * kMinute;
    entry.template_id = *catalog_.FindByName("TPCH-Q6");
    log.entries.push_back(entry);
  }
  ASSERT_TRUE(service.ScheduleLogReplay({log}).ok());
  engine_.Run();
  EXPECT_EQ(service.metrics().completed, 5u);
  EXPECT_EQ(service.metrics().SlaAttainment(), 1.0);
}

TEST_F(ServiceTest, ReplayUnknownTenantRejected) {
  ThriftyService service = MakeService();
  ASSERT_TRUE(service.Deploy(TwoGroupPlan()).ok());
  TenantLog log;
  log.tenant_id = 99;
  EXPECT_EQ(service.ScheduleLogReplay({log}).code(), StatusCode::kNotFound);
}

TEST_F(ServiceTest, ActivityMonitorSeesTransitions) {
  ThriftyService service = MakeService();
  ASSERT_TRUE(service.Deploy(TwoGroupPlan()).ok());
  ASSERT_TRUE(service.SubmitQuery(0, *catalog_.FindByName("TPCH-Q1")).ok());
  EXPECT_TRUE(service.activity_monitor()->tracker()->IsActive(0));
  auto active = service.activity_monitor()->ActiveTenantsInGroup(0);
  ASSERT_TRUE(active.ok());
  EXPECT_EQ(*active, 1);
  engine_.Run();
  EXPECT_FALSE(service.activity_monitor()->tracker()->IsActive(0));
  active = service.activity_monitor()->ActiveTenantsInGroup(0);
  ASSERT_TRUE(active.ok());
  EXPECT_EQ(*active, 0);
}

TEST_F(ServiceTest, GroupsAreIsolatedFromEachOther) {
  // Filling group 0 (A = 2 MPPDBs, 2 active tenants) never touches
  // group 1's MPPDBs.
  ThriftyService service = MakeService();
  ASSERT_TRUE(service.Deploy(TwoGroupPlan()).ok());
  TemplateId q1 = *catalog_.FindByName("TPCH-Q1");
  for (TenantId t = 0; t < 2; ++t) {
    ASSERT_TRUE(service.SubmitQuery(t, q1).ok());
  }
  auto group1_router = service.router()->RouterForGroup(1);
  ASSERT_TRUE(group1_router.ok());
  for (MppdbInstance* m : (*group1_router)->mppdbs()) {
    EXPECT_TRUE(m->IsFree());
  }
  auto result = service.SubmitQuery(3, q1);  // group 1 tenant
  ASSERT_TRUE(result.ok());
  engine_.Run();
  EXPECT_EQ(service.metrics().SlaAttainment(), 1.0);
}

}  // namespace
}  // namespace thrifty
