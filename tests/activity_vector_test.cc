#include "activity/activity_vector.h"

#include <gtest/gtest.h>

namespace thrifty {
namespace {

EpochConfig TenByTenSeconds() {
  return EpochConfig{10 * kSecond, 0, 100 * kSecond};
}

TEST(IntervalsToBitmapTest, MarksOverlappedEpochs) {
  IntervalSet set;
  set.Add(15 * kSecond, 35 * kSecond);  // touches epochs 1, 2, 3
  DynamicBitmap bits = IntervalsToBitmap(set, TenByTenSeconds());
  EXPECT_EQ(bits.Popcount(), 3u);
  EXPECT_TRUE(bits.Get(1));
  EXPECT_TRUE(bits.Get(2));
  EXPECT_TRUE(bits.Get(3));
}

TEST(IntervalsToBitmapTest, ExactBoundaryDoesNotSpill) {
  IntervalSet set;
  set.Add(10 * kSecond, 20 * kSecond);  // exactly epoch 1
  DynamicBitmap bits = IntervalsToBitmap(set, TenByTenSeconds());
  EXPECT_EQ(bits.Popcount(), 1u);
  EXPECT_TRUE(bits.Get(1));
}

TEST(IntervalsToBitmapTest, SubEpochQueryStillMarksItsEpoch) {
  // The paper's epoch-size discussion (§5): a query spanning a tiny part of
  // an epoch makes the tenant active in that whole epoch.
  IntervalSet set;
  set.Add(41 * kSecond, 42 * kSecond);
  DynamicBitmap bits = IntervalsToBitmap(set, TenByTenSeconds());
  EXPECT_EQ(bits.Popcount(), 1u);
  EXPECT_TRUE(bits.Get(4));
}

TEST(IntervalsToBitmapTest, ClipsToHorizon) {
  IntervalSet set;
  set.Add(-20 * kSecond, 5 * kSecond);
  set.Add(95 * kSecond, 300 * kSecond);
  DynamicBitmap bits = IntervalsToBitmap(set, TenByTenSeconds());
  EXPECT_TRUE(bits.Get(0));
  EXPECT_TRUE(bits.Get(9));
  EXPECT_EQ(bits.Popcount(), 2u);
}

TEST(ActivityVectorTest, SparseRoundTrip) {
  DynamicBitmap bits(300);
  bits.SetRange(10, 20);
  bits.SetRange(190, 230);
  bits.Set(299);
  ActivityVector v = ActivityVector::FromBitmap(7, bits);
  EXPECT_EQ(v.tenant_id(), 7);
  EXPECT_EQ(v.num_epochs(), 300u);
  EXPECT_EQ(v.ActiveEpochs(), bits.Popcount());
  EXPECT_EQ(v.ToBitmap(), bits);
  EXPECT_TRUE(v.Get(10));
  EXPECT_FALSE(v.Get(9));
  EXPECT_TRUE(v.Get(299));
  EXPECT_FALSE(v.Get(150));
}

TEST(ActivityVectorTest, EmptyVector) {
  DynamicBitmap bits(100);
  ActivityVector v = ActivityVector::FromBitmap(1, bits);
  EXPECT_EQ(v.ActiveEpochs(), 0u);
  EXPECT_EQ(v.ActiveRatio(), 0);
  EXPECT_TRUE(v.word_indices().empty());
}

TEST(ActivityVectorTest, ActiveRatio) {
  DynamicBitmap bits(100);
  bits.SetRange(0, 25);
  ActivityVector v = ActivityVector::FromBitmap(1, bits);
  EXPECT_DOUBLE_EQ(v.ActiveRatio(), 0.25);
}

TEST(ActivityVectorTest, FromLog) {
  TenantLog log;
  log.tenant_id = 3;
  log.entries.push_back({5 * kSecond, 0, 10 * kSecond, -1});   // [5, 15)
  log.entries.push_back({12 * kSecond, 1, 30 * kSecond, -1});  // [12, 42)
  ActivityVector v = MakeActivityVector(log, TenByTenSeconds());
  EXPECT_EQ(v.tenant_id(), 3);
  // Active in [5 s, 42 s): epochs 0-4.
  EXPECT_EQ(v.ActiveEpochs(), 5u);
  for (size_t k = 0; k <= 4; ++k) EXPECT_TRUE(v.Get(k)) << k;
  EXPECT_FALSE(v.Get(5));
}

TEST(ActivityVectorTest, MakeVectorsForAllLogs) {
  std::vector<TenantLog> logs(3);
  for (int i = 0; i < 3; ++i) {
    logs[static_cast<size_t>(i)].tenant_id = i;
    logs[static_cast<size_t>(i)].entries.push_back(
        {i * 10 * kSecond, 0, 5 * kSecond, -1});
  }
  auto vectors = MakeActivityVectors(logs, TenByTenSeconds());
  ASSERT_EQ(vectors.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(vectors[static_cast<size_t>(i)].tenant_id(), i);
    EXPECT_TRUE(vectors[static_cast<size_t>(i)].Get(static_cast<size_t>(i)));
  }
}

}  // namespace
}  // namespace thrifty
