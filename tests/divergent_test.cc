#include "placement/divergent.h"

#include <gtest/gtest.h>

namespace thrifty {
namespace {

std::vector<PartitionLayout> MakeLayouts() {
  PartitionLayout scans{"scan-optimized", {{1, 3.0}, {2, 1.5}}};
  PartitionLayout joins{"join-optimized", {{3, 2.5}, {4, 2.0}}};
  PartitionLayout balanced{"balanced", {{1, 1.4}, {2, 1.4}, {3, 1.4},
                                        {4, 1.4}}};
  return {scans, joins, balanced};
}

TEST(DivergentTest, LayoutSpeedupDefaultsToOne) {
  PartitionLayout layout{"x", {{7, 2.0}}};
  EXPECT_DOUBLE_EQ(layout.SpeedupFor(7), 2.0);
  EXPECT_DOUBLE_EQ(layout.SpeedupFor(8), 1.0);
}

TEST(DivergentTest, CoversAllTemplatesAcrossReplicas) {
  auto design = PlanDivergentGroup(
      /*largest_tenant_nodes=*/4, /*total_requested_nodes=*/60,
      /*num_mppdbs=*/3, /*workload_templates=*/{1, 2, 3, 4}, MakeLayouts());
  ASSERT_TRUE(design.ok()) << design.status();
  EXPECT_EQ(design->replica_layouts.size(), 3u);
  // With scan- and join-optimized layouts both chosen somewhere, every
  // template gets at least a 1.4x-fast replica.
  EXPECT_GE(design->worst_template_best_speedup, 1.4);
}

TEST(DivergentTest, SizesTuningMppdbForExpectedMpl) {
  DivergentDesignOptions options;
  options.expected_mpl = 2;
  auto design = PlanDivergentGroup(4, 60, 3, {1, 2, 3, 4}, MakeLayouts(),
                                   options);
  ASSERT_TRUE(design.ok());
  // U must give each of 2 concurrent queries an n_1-equivalent share,
  // discounted by MPPDB_0's layout speedup; always > n_1 and <= 2 x n_1.
  EXPECT_GT(design->cluster.tuning_nodes(), 4);
  EXPECT_LE(design->cluster.tuning_nodes(), 8);
  // Replicas 1..A-1 stay at n_1.
  EXPECT_EQ(design->cluster.mppdb_nodes[1], 4);
  EXPECT_EQ(design->cluster.mppdb_nodes[2], 4);
}

TEST(DivergentTest, HigherMplNeedsBiggerU) {
  DivergentDesignOptions mpl2, mpl4;
  mpl2.expected_mpl = 2;
  mpl4.expected_mpl = 4;
  auto d2 = PlanDivergentGroup(4, 100, 3, {1}, MakeLayouts(), mpl2);
  auto d4 = PlanDivergentGroup(4, 100, 3, {1}, MakeLayouts(), mpl4);
  ASSERT_TRUE(d2.ok() && d4.ok());
  EXPECT_GT(d4->cluster.tuning_nodes(), d2->cluster.tuning_nodes());
}

TEST(DivergentTest, LayoutSpeedupReducesU) {
  // Template 1 runs 3x faster under the scan layout, so MPPDB_0 needs a
  // third of the raw MPL x n_1 nodes.
  DivergentDesignOptions options;
  options.expected_mpl = 3;
  auto fast = PlanDivergentGroup(4, 100, 2, {1}, MakeLayouts(), options);
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(fast->cluster.tuning_nodes(), 4);  // ceil(3*4/3.0) = 4 = n_1

  PartitionLayout plain{"plain", {}};
  auto slow = PlanDivergentGroup(4, 100, 2, {1}, {plain}, options);
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(slow->cluster.tuning_nodes(), 12);  // ceil(3*4/1.0)
}

TEST(DivergentTest, InfeasibleMplIsCapacityExceeded) {
  // N = 14, A = 3, n_1 = 4 -> U may be at most 6; MPL 4 with no speedup
  // needs 16.
  PartitionLayout plain{"plain", {}};
  DivergentDesignOptions options;
  options.expected_mpl = 4;
  auto result = PlanDivergentGroup(4, 14, 3, {1}, {plain}, options);
  EXPECT_EQ(result.status().code(), StatusCode::kCapacityExceeded);
}

TEST(DivergentTest, RejectsBadInputs) {
  auto layouts = MakeLayouts();
  EXPECT_FALSE(PlanDivergentGroup(4, 60, 3, {}, layouts).ok());
  EXPECT_FALSE(PlanDivergentGroup(4, 60, 3, {1}, {}).ok());
  DivergentDesignOptions bad;
  bad.expected_mpl = 0;
  EXPECT_FALSE(PlanDivergentGroup(4, 60, 3, {1}, layouts, bad).ok());
  EXPECT_FALSE(PlanDivergentGroup(4, 60, 0, {1}, layouts).ok());
}

}  // namespace
}  // namespace thrifty
