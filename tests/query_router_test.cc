#include "routing/query_router.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "sim/engine.h"

namespace thrifty {
namespace {

// Harness with one tenant-group of three 4-node MPPDBs, mirroring the
// Fig 4.2 setting (MPPDB_0 is the tuning MPPDB).
class RouterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (InstanceId id = 0; id < 3; ++id) {
      auto instance = std::make_unique<MppdbInstance>(id, 4, &engine_);
      for (TenantId t = 1; t <= 10; ++t) instance->AddTenant(t, 100);
      instances_.push_back(std::move(instance));
    }
    router_ = std::make_unique<GroupRouter>(
        0, std::vector<MppdbInstance*>{instances_[0].get(),
                                       instances_[1].get(),
                                       instances_[2].get()});
  }

  // Routes and actually submits, so instance busy-state evolves.
  RouteDecision RouteAndSubmit(TenantId tenant, double work_seconds) {
    auto decision = router_->Route(tenant);
    EXPECT_TRUE(decision.ok()) << decision.status();
    QueryTemplate tmpl;
    tmpl.id = 0;
    // DedicatedLatency = work * data(100 GB) * (1/4 nodes).
    tmpl.work_seconds_per_gb = work_seconds * 4 / 100;
    QuerySubmission s;
    s.query_id = next_query_id_++;
    s.tenant_id = tenant;
    EXPECT_TRUE(decision->instance->Submit(s, tmpl).ok());
    return *decision;
  }

  SimEngine engine_;
  std::vector<std::unique_ptr<MppdbInstance>> instances_;
  std::unique_ptr<GroupRouter> router_;
  QueryId next_query_id_ = 0;
};

// The full Fig 4.2 walkthrough: queries Q1..Q8 of tenants T4, T2, T9, T1.
TEST_F(RouterTest, Fig42Walkthrough) {
  // t=0: T4 submits Q1 -> all free, MPPDB_0 (line 5).
  RouteDecision q1 = RouteAndSubmit(4, 30);
  EXPECT_EQ(q1.instance->id(), 0);
  EXPECT_EQ(q1.kind, RouteKind::kTuningFree);

  // t=10: T2 submits Q2 -> MPPDB_0 busy, MPPDB_1 free (line 8).
  engine_.RunUntil(10 * kSecond);
  RouteDecision q2 = RouteAndSubmit(2, 30);
  EXPECT_EQ(q2.instance->id(), 1);
  EXPECT_EQ(q2.kind, RouteKind::kOtherFree);

  // t=20: T4 submits Q3 while Q1 runs -> follows to MPPDB_0 (line 2).
  engine_.RunUntil(20 * kSecond);
  RouteDecision q3 = RouteAndSubmit(4, 30);
  EXPECT_EQ(q3.instance->id(), 0);
  EXPECT_EQ(q3.kind, RouteKind::kTenantAffinity);

  // t=30: T2 submits Q4 while Q2 runs -> follows to MPPDB_1 (line 2).
  engine_.RunUntil(30 * kSecond);
  RouteDecision q4 = RouteAndSubmit(2, 30);
  EXPECT_EQ(q4.instance->id(), 1);
  EXPECT_EQ(q4.kind, RouteKind::kTenantAffinity);

  // t=40: T9 submits Q5 -> MPPDB_2 free (line 8).
  engine_.RunUntil(40 * kSecond);
  RouteDecision q5 = RouteAndSubmit(9, 200);
  EXPECT_EQ(q5.instance->id(), 2);
  EXPECT_EQ(q5.kind, RouteKind::kOtherFree);

  // Q1/Q3 finish by t=60 (processor sharing: 30+30 s of work).
  // t=80: T1 submits Q6 -> MPPDB_0 free again (line 5).
  engine_.RunUntil(80 * kSecond);
  ASSERT_TRUE(instances_[0]->IsFree());
  RouteDecision q6 = RouteAndSubmit(1, 50);
  EXPECT_EQ(q6.instance->id(), 0);
  EXPECT_EQ(q6.kind, RouteKind::kTuningFree);

  // t=90: T4 (now inactive) submits Q7 -> MPPDB_0 busy with T1, MPPDB_1
  // free (Q2/Q4 done by t=70) -> MPPDB_1 (line 8).
  engine_.RunUntil(90 * kSecond);
  RouteDecision q7 = RouteAndSubmit(4, 100);
  EXPECT_EQ(q7.instance->id(), 1);
  EXPECT_EQ(q7.kind, RouteKind::kOtherFree);

  // t=140: T1 submits Q8 after Q6 finished (T1 briefly inactive). MPPDB_1
  // and MPPDB_2 are busy but MPPDB_0 is free -> MPPDB_0.
  engine_.RunUntil(140 * kSecond);
  ASSERT_TRUE(instances_[0]->IsFree());
  ASSERT_FALSE(instances_[1]->IsFree());
  ASSERT_FALSE(instances_[2]->IsFree());
  RouteDecision q8 = RouteAndSubmit(1, 30);
  EXPECT_EQ(q8.instance->id(), 0);
  EXPECT_EQ(q8.kind, RouteKind::kTuningFree);

  // t=150: a fourth tenant T5 submits while all three MPPDBs are busy ->
  // overflow to MPPDB_0 for concurrent processing (line 10).
  engine_.RunUntil(150 * kSecond);
  RouteDecision q9 = RouteAndSubmit(5, 10);
  EXPECT_EQ(q9.instance->id(), 0);
  EXPECT_EQ(q9.kind, RouteKind::kOverflow);

  // Routing counters saw every branch.
  EXPECT_EQ(router_->counters().at(RouteKind::kTuningFree), 3);
  EXPECT_EQ(router_->counters().at(RouteKind::kOtherFree), 3);
  EXPECT_EQ(router_->counters().at(RouteKind::kTenantAffinity), 2);
  EXPECT_EQ(router_->counters().at(RouteKind::kOverflow), 1);
}

TEST_F(RouterTest, DedicatedAssignmentOverridesEverything) {
  auto dedicated = std::make_unique<MppdbInstance>(99, 4, &engine_);
  dedicated->AddTenant(3, 100);
  router_->AssignDedicated(3, dedicated.get());
  EXPECT_TRUE(router_->HasDedicated(3));
  auto decision = router_->Route(3);
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision->instance->id(), 99);
  EXPECT_EQ(decision->kind, RouteKind::kDedicated);

  router_->RemoveDedicated(3);
  EXPECT_FALSE(router_->HasDedicated(3));
  auto after = router_->Route(3);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->instance->id(), 0);
}

TEST_F(RouterTest, DedicatedInstanceNotOnlineFallsBack) {
  auto dedicated = std::make_unique<MppdbInstance>(
      99, 4, &engine_, InstanceState::kLoading);
  router_->AssignDedicated(3, dedicated.get());
  auto decision = router_->Route(3);
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision->instance->id(), 0);  // normal Algorithm 1 path
}

TEST_F(RouterTest, OfflineTuningMppdbSkipped) {
  instances_[0]->SetState(InstanceState::kStopped);
  auto decision = router_->Route(1);
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision->instance->id(), 1);
  EXPECT_EQ(decision->kind, RouteKind::kOtherFree);
}

TEST_F(RouterTest, NoOnlineMppdbIsUnavailable) {
  for (auto& instance : instances_) {
    instance->SetState(InstanceState::kStopped);
  }
  EXPECT_EQ(router_->Route(1).status().code(), StatusCode::kUnavailable);
}

TEST(QueryRouterTest, RoutesByTenantGroupMembership) {
  SimEngine engine;
  MppdbInstance a(0, 2, &engine), b(1, 2, &engine);
  a.AddTenant(1, 100);
  b.AddTenant(2, 100);
  QueryRouter router;
  ASSERT_TRUE(router.AddGroup(0, {&a}, {1}).ok());
  ASSERT_TRUE(router.AddGroup(1, {&b}, {2}).ok());
  auto r1 = router.Route(1);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->instance->id(), 0);
  auto r2 = router.Route(2);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->instance->id(), 1);
  EXPECT_EQ(router.Route(3).status().code(), StatusCode::kNotFound);
}

TEST(QueryRouterTest, RejectsDuplicateRegistrations) {
  SimEngine engine;
  MppdbInstance a(0, 2, &engine);
  QueryRouter router;
  ASSERT_TRUE(router.AddGroup(0, {&a}, {1}).ok());
  EXPECT_EQ(router.AddGroup(0, {&a}, {5}).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(router.AddGroup(1, {&a}, {1}).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(router.AddGroup(2, {}, {7}).code(), StatusCode::kInvalidArgument);
}

TEST(QueryRouterTest, RemoveGroupUnregistersRouting) {
  SimEngine engine;
  MppdbInstance a(0, 2, &engine), b(1, 2, &engine);
  QueryRouter router;
  ASSERT_TRUE(router.AddGroup(0, {&a}, {1, 2}).ok());
  ASSERT_TRUE(router.AddGroup(1, {&b}, {3}).ok());

  ASSERT_TRUE(router.RemoveGroup(0).ok());
  // The removed group's tenants no longer route; the other group is
  // untouched; its id is free for re-registration.
  EXPECT_EQ(router.Route(1).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(router.Route(2).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(router.Route(3).ok());
  EXPECT_EQ(router.RemoveGroup(0).code(), StatusCode::kNotFound);
  EXPECT_TRUE(router.AddGroup(0, {&a}, {1}).ok());
  EXPECT_TRUE(router.Route(1).ok());
}

TEST(QueryRouterTest, RouterForLookups) {
  SimEngine engine;
  MppdbInstance a(0, 2, &engine);
  QueryRouter router;
  ASSERT_TRUE(router.AddGroup(5, {&a}, {1}).ok());
  EXPECT_TRUE(router.RouterFor(1).ok());
  EXPECT_EQ((*router.RouterFor(1))->group_id(), 5);
  EXPECT_TRUE(router.RouterForGroup(5).ok());
  EXPECT_FALSE(router.RouterFor(9).ok());
  EXPECT_FALSE(router.RouterForGroup(9).ok());
}

}  // namespace
}  // namespace thrifty
