#include "core/admin_report.h"

#include <sstream>

#include <gtest/gtest.h>

#include "core/thrifty.h"

namespace thrifty {
namespace {

class AdminReportTest : public ::testing::Test {
 protected:
  AdminReportTest()
      : cluster_(20, &engine_), catalog_(QueryCatalog::Default()) {}

  DeploymentPlan MakePlan() {
    DeploymentPlan plan;
    plan.replication_factor = 2;
    plan.sla_fraction = 0.999;
    GroupDeployment group;
    group.group_id = 0;
    for (TenantId id = 0; id < 3; ++id) {
      TenantSpec spec;
      spec.id = id;
      spec.requested_nodes = 4;
      spec.data_gb = 400;
      group.tenants.push_back(spec);
    }
    group.cluster.mppdb_nodes = {6, 4};
    plan.groups.push_back(group);
    return plan;
  }

  SimEngine engine_;
  Cluster cluster_;
  QueryCatalog catalog_;
};

TEST_F(AdminReportTest, SnapshotsClusterGroupsAndMetrics) {
  ServiceOptions options;
  options.replication_factor = 2;
  options.elastic_scaling = false;
  ThriftyService service(&engine_, &cluster_, &catalog_, options);
  ASSERT_TRUE(service.Deploy(MakePlan()).ok());
  ASSERT_TRUE(service.SubmitQuery(0, *catalog_.FindByName("TPCH-Q1")).ok());

  auto report = BuildStatusReport(&service);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->nodes_total, 20);
  EXPECT_EQ(report->nodes_in_use, 10);
  ASSERT_EQ(report->groups.size(), 1u);
  const GroupStatus& group = report->groups[0];
  EXPECT_EQ(group.num_tenants, 3u);
  EXPECT_EQ(group.num_mppdbs, 2);
  EXPECT_EQ(group.tuning_nodes, 6);
  EXPECT_EQ(group.replica_nodes, 4);
  EXPECT_EQ(group.active_tenants, 1);  // query still running
  EXPECT_EQ(group.tuning_action, TuningAction::kNone);
  EXPECT_FALSE(group.scaled);

  engine_.Run();
  auto after = BuildStatusReport(&service);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->groups[0].active_tenants, 0);
  EXPECT_EQ(after->metrics.completed, 1u);
}

TEST_F(AdminReportTest, PrintedReportMentionsKeyFacts) {
  ServiceOptions options;
  options.replication_factor = 2;
  options.elastic_scaling = false;
  ThriftyService service(&engine_, &cluster_, &catalog_, options);
  ASSERT_TRUE(service.Deploy(MakePlan()).ok());
  auto report = BuildStatusReport(&service);
  ASSERT_TRUE(report.ok());
  std::ostringstream os;
  PrintStatusReport(*report, os);
  std::string text = os.str();
  EXPECT_NE(text.find("10 in use / 20 total"), std::string::npos);
  EXPECT_NE(text.find("6/4"), std::string::npos);
  EXPECT_NE(text.find("100.00%"), std::string::npos);
}

TEST_F(AdminReportTest, TemplateTrafficCounters) {
  ServiceOptions options;
  options.replication_factor = 2;
  options.elastic_scaling = false;
  ThriftyService service(&engine_, &cluster_, &catalog_, options);
  ASSERT_TRUE(service.Deploy(MakePlan()).ok());

  TemplateId q1 = *catalog_.FindByName("TPCH-Q1");
  TemplateId q19 = *catalog_.FindByName("TPCH-Q19");
  ASSERT_TRUE(service.SubmitQuery(0, q1).ok());
  ASSERT_TRUE(service.SubmitQuery(1, q1).ok());
  ASSERT_TRUE(service.SubmitQuery(2, q19).ok());

  // Mid-flight: everything submitted, nothing completed.
  auto mid = BuildStatusReport(&service);
  ASSERT_TRUE(mid.ok());
  ASSERT_EQ(mid->template_usage.size(), 2u);
  EXPECT_EQ(mid->template_usage[0].template_id, std::min(q1, q19));
  EXPECT_EQ(mid->template_usage[1].template_id, std::max(q1, q19));
  for (const TemplateUsage& usage : mid->template_usage) {
    EXPECT_EQ(usage.submitted, usage.template_id == q1 ? 2 : 1);
    EXPECT_EQ(usage.completed, 0);
    EXPECT_EQ(usage.InFlight(), usage.submitted);
  }

  engine_.Run();
  auto after = BuildStatusReport(&service);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->template_usage.size(), 2u);
  for (const TemplateUsage& usage : after->template_usage) {
    EXPECT_EQ(usage.completed, usage.submitted);
    EXPECT_EQ(usage.InFlight(), 0);
  }

  std::ostringstream os;
  PrintStatusReport(*after, os);
  EXPECT_NE(os.str().find("Template traffic:"), std::string::npos);
}

TEST_F(AdminReportTest, NullServiceRejected) {
  EXPECT_EQ(BuildStatusReport(nullptr).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace thrifty
