// Property test for Guarantee 1 (§4.4): whatever the queries are —
// linear or non-linear scale-out, sequential ad-hoc or concurrent batches
// at any MPL — TDD meets the SLAs of up to A concurrently active tenants.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/service.h"
#include "core/thrifty.h"

namespace thrifty {
namespace {

constexpr int kNodes = 4;
constexpr int kReplication = 3;

DeploymentPlan OneGroupPlan(int num_tenants) {
  DeploymentPlan plan;
  plan.replication_factor = kReplication;
  plan.sla_fraction = 0.999;
  GroupDeployment group;
  group.group_id = 0;
  for (TenantId id = 0; id < num_tenants; ++id) {
    TenantSpec spec;
    spec.id = id;
    spec.requested_nodes = kNodes;
    spec.data_gb = 100.0 * kNodes;
    spec.suite = QuerySuite::kTpch;
    group.tenants.push_back(spec);
  }
  group.cluster.mppdb_nodes = {kNodes, kNodes, kNodes};
  plan.groups.push_back(group);
  return plan;
}

// Drives one "slot" of activity: at most one tenant of its private subset
// is active at any time; each action is a batch of 1..3 queries (MPL > 1).
class SlotDriver {
 public:
  SlotDriver(ThriftyService* service, SimEngine* engine,
             const QueryCatalog* catalog, std::vector<TenantId> tenants,
             SimTime horizon, Rng rng)
      : service_(service),
        engine_(engine),
        catalog_(catalog),
        tenants_(std::move(tenants)),
        horizon_(horizon),
        rng_(rng) {}

  void Start() { Act(engine_->now()); }

  // Called by the test's completion hook for queries of this slot's
  // tenants.
  void OnQueryDone(SimTime now) {
    if (--outstanding_ == 0) {
      SimDuration gap = rng_.NextInt(1, 30) * kSecond;
      engine_->ScheduleAt(now + gap, [this](SimTime t) { Act(t); });
    }
  }

  bool OwnsTenant(TenantId tenant) const {
    for (TenantId t : tenants_) {
      if (t == tenant) return true;
    }
    return false;
  }

 private:
  void Act(SimTime now) {
    if (now >= horizon_) return;
    TenantId tenant = tenants_[rng_.NextBounded(tenants_.size())];
    int batch = static_cast<int>(rng_.NextInt(1, 3));
    outstanding_ = batch;
    for (int i = 0; i < batch; ++i) {
      TemplateId tmpl = catalog_->SampleFromSuite(QuerySuite::kTpch, &rng_);
      auto result = service_->SubmitQuery(tenant, tmpl);
      ASSERT_TRUE(result.ok()) << result.status();
    }
  }

  ThriftyService* service_;
  SimEngine* engine_;
  const QueryCatalog* catalog_;
  std::vector<TenantId> tenants_;
  SimTime horizon_;
  Rng rng_;
  int outstanding_ = 0;
};

class GuaranteeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GuaranteeTest, AtMostAActiveTenantsAlwaysMeetSla) {
  SimEngine engine;
  Cluster cluster(3 * kNodes, &engine);
  QueryCatalog catalog = QueryCatalog::Default();
  ServiceOptions options;
  options.replication_factor = kReplication;
  options.elastic_scaling = false;
  ThriftyService service(&engine, &cluster, &catalog, options);
  ASSERT_TRUE(service.Deploy(OneGroupPlan(9)).ok());

  // Three slots over disjoint tenant subsets: at most 3 = A tenants are
  // ever concurrently active.
  Rng rng(GetParam());
  const SimTime horizon = 6 * kHour;
  std::vector<std::unique_ptr<SlotDriver>> slots;
  for (int s = 0; s < 3; ++s) {
    std::vector<TenantId> subset = {static_cast<TenantId>(s * 3),
                                    static_cast<TenantId>(s * 3 + 1),
                                    static_cast<TenantId>(s * 3 + 2)};
    slots.push_back(std::make_unique<SlotDriver>(
        &service, &engine, &catalog, subset, horizon,
        rng.Fork(static_cast<uint64_t>(s) + 1)));
  }
  size_t violations = 0;
  double worst = 0;
  service.set_completion_hook([&](const QueryOutcome& outcome) {
    double normalized = outcome.NormalizedPerformance();
    worst = std::max(worst, normalized);
    if (normalized > 1.001) ++violations;
    for (auto& slot : slots) {
      if (slot->OwnsTenant(outcome.real.tenant_id)) {
        slot->OnQueryDone(outcome.real.finish_time);
        break;
      }
    }
  });
  for (auto& slot : slots) slot->Start();
  engine.Run();

  EXPECT_GT(service.metrics().completed, 50u);
  EXPECT_EQ(violations, 0u) << "worst normalized performance " << worst;
  EXPECT_DOUBLE_EQ(service.metrics().SlaAttainment(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GuaranteeTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(GuaranteeViolationTest, MoreThanAActiveTenantsCanViolate) {
  // Sanity check of the metric itself: 4 tenants submitting together on a
  // 3-MPPDB group must overflow MPPDB_0 and miss the SLA.
  SimEngine engine;
  Cluster cluster(3 * kNodes, &engine);
  QueryCatalog catalog = QueryCatalog::Default();
  ServiceOptions options;
  options.replication_factor = kReplication;
  options.elastic_scaling = false;
  ThriftyService service(&engine, &cluster, &catalog, options);
  ASSERT_TRUE(service.Deploy(OneGroupPlan(4)).ok());

  size_t violations = 0;
  service.set_completion_hook([&](const QueryOutcome& outcome) {
    if (outcome.NormalizedPerformance() > 1.001) ++violations;
  });
  TemplateId q1 = *catalog.FindByName("TPCH-Q1");
  for (TenantId t = 0; t < 4; ++t) {
    ASSERT_TRUE(service.SubmitQuery(t, q1).ok());
  }
  engine.Run();
  EXPECT_EQ(service.metrics().completed, 4u);
  // Two queries shared MPPDB_0: both ran ~2x slower than isolated.
  EXPECT_EQ(violations, 2u);
  EXPECT_DOUBLE_EQ(service.metrics().SlaAttainment(), 0.5);
}

}  // namespace
}  // namespace thrifty
