#include "placement/ffd.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fig51_fixture.h"
#include "placement/two_step.h"

namespace thrifty {
namespace {

using testing_fixtures::Fig51Activities;

std::vector<TenantSpec> UniformTenants(size_t count, int nodes) {
  std::vector<TenantSpec> tenants(count);
  for (size_t i = 0; i < count; ++i) {
    tenants[i].id = static_cast<TenantId>(i + 1);
    tenants[i].requested_nodes = nodes;
    tenants[i].data_gb = 100.0 * nodes;
  }
  return tenants;
}

TEST(FfdTest, SolutionIsFeasibleOnFig51) {
  auto activities = Fig51Activities();
  auto tenants = UniformTenants(6, 4);
  auto problem = MakePackingProblem(tenants, activities, 3, 0.999);
  ASSERT_TRUE(problem.ok());
  auto solution = SolveFfd(*problem);
  ASSERT_TRUE(solution.ok());
  EXPECT_TRUE(VerifySolution(*problem, *solution).ok());
}

TEST(FfdTest, DeterministicAcrossRuns) {
  auto activities = Fig51Activities();
  auto tenants = UniformTenants(6, 4);
  auto problem = MakePackingProblem(tenants, activities, 3, 0.999);
  ASSERT_TRUE(problem.ok());
  auto a = SolveFfd(*problem);
  auto b = SolveFfd(*problem);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->groups.size(), b->groups.size());
  for (size_t g = 0; g < a->groups.size(); ++g) {
    EXPECT_EQ(a->groups[g].tenant_ids, b->groups[g].tenant_ids);
  }
}

TEST(FfdTest, MixedSizesInflateLargestItemCost) {
  // FFD is size-oblivious: a big tenant and small tenants with disjoint
  // activities land in one bin, which then costs R x big for everyone.
  // The two-step heuristic separates sizes and pays less.
  const size_t num_epochs = 100;
  std::vector<ActivityVector> activities;
  std::vector<TenantSpec> tenants;
  // One 32-node tenant active in epochs [0, 10).
  {
    DynamicBitmap bits(num_epochs);
    bits.SetRange(0, 10);
    activities.push_back(ActivityVector::FromBitmap(1, bits));
    TenantSpec spec;
    spec.id = 1;
    spec.requested_nodes = 32;
    tenants.push_back(spec);
  }
  // Six 2-node tenants active in disjoint later windows.
  for (TenantId id = 2; id <= 7; ++id) {
    DynamicBitmap bits(num_epochs);
    size_t begin = 10 + static_cast<size_t>(id) * 10;
    bits.SetRange(begin, begin + 5);
    activities.push_back(ActivityVector::FromBitmap(id, bits));
    TenantSpec spec;
    spec.id = id;
    spec.requested_nodes = 2;
    tenants.push_back(spec);
  }
  auto problem = MakePackingProblem(tenants, activities, 3, 0.999);
  ASSERT_TRUE(problem.ok());
  auto ffd = SolveFfd(*problem);
  auto two_step = SolveTwoStep(*problem);
  ASSERT_TRUE(ffd.ok() && two_step.ok());
  EXPECT_TRUE(VerifySolution(*problem, *ffd).ok());
  EXPECT_TRUE(VerifySolution(*problem, *two_step).ok());
  // two-step: {32-node} group (3x32) + one 2-node group (3x2) = 102;
  // FFD packs everything into the first bin = 96. Here FFD actually wins
  // on raw cost... unless the small tenants overflow the bin. What must
  // hold unconditionally: both are feasible, and two-step never mixes
  // sizes.
  for (const auto& group : two_step->groups) {
    int first_size =
        tenants[static_cast<size_t>(group.tenant_ids[0] - 1)].requested_nodes;
    for (TenantId id : group.tenant_ids) {
      EXPECT_EQ(tenants[static_cast<size_t>(id - 1)].requested_nodes,
                first_size);
    }
  }
}

TEST(FfdTest, TwoStepBeatsFfdOnSkewedPopulations) {
  // A structured instance mirroring the paper's §7.3 result that the
  // two-step heuristic saves 3.6-11.1% more nodes: many small tenants plus
  // some large ones, all with office-hour-like activity blocks.
  Rng rng(77);
  const size_t num_epochs = 2000;
  std::vector<ActivityVector> activities;
  std::vector<TenantSpec> tenants;
  TenantId next_id = 0;
  auto add_tenants = [&](int count, int nodes) {
    for (int i = 0; i < count; ++i) {
      DynamicBitmap bits(num_epochs);
      // Office-hour structure: the tenant works in one of 4 time-zone
      // windows (150 epochs within each 500-epoch "day"), with an activity
      // volume that varies widely across tenants (1-5 users).
      size_t zone = rng.NextBounded(4) * 80;
      int users = static_cast<int>(rng.NextInt(1, 5));
      for (size_t day = 0; day < 4; ++day) {
        for (int u = 0; u < users; ++u) {
          size_t start = day * 500 + zone + rng.NextBounded(150);
          bits.SetRange(start, start + 10 + rng.NextBounded(30));
        }
      }
      activities.push_back(ActivityVector::FromBitmap(next_id, bits));
      TenantSpec spec;
      spec.id = next_id++;
      spec.requested_nodes = nodes;
      tenants.push_back(spec);
    }
  };
  add_tenants(60, 2);
  add_tenants(25, 4);
  add_tenants(10, 8);
  add_tenants(5, 16);

  auto problem = MakePackingProblem(tenants, activities, 3, 0.999);
  ASSERT_TRUE(problem.ok());
  auto ffd = SolveFfd(*problem);
  auto two_step = SolveTwoStep(*problem);
  ASSERT_TRUE(ffd.ok() && two_step.ok());
  EXPECT_TRUE(VerifySolution(*problem, *ffd).ok());
  EXPECT_TRUE(VerifySolution(*problem, *two_step).ok());
  EXPECT_LT(two_step->NodesUsed(3), ffd->NodesUsed(3));
}

TEST(FfdTest, SortKeyVariantsAllFeasible) {
  auto activities = Fig51Activities();
  auto tenants = UniformTenants(6, 4);
  auto problem = MakePackingProblem(tenants, activities, 3, 0.999);
  ASSERT_TRUE(problem.ok());
  for (FfdSortKey key : {FfdSortKey::kNodesTimesActivity, FfdSortKey::kActivity,
                         FfdSortKey::kNodes}) {
    FfdOptions options;
    options.sort_key = key;
    auto solution = SolveFfd(*problem, options);
    ASSERT_TRUE(solution.ok());
    EXPECT_TRUE(VerifySolution(*problem, *solution).ok());
  }
}

}  // namespace
}  // namespace thrifty
