#include "workload/log_generator.h"

#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "workload/tenant_population.h"

namespace thrifty {
namespace {

// One shared library for the whole file: Step-1 generation is the expensive
// part and is reusable across tests.
class LogGeneratorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new QueryCatalog(QueryCatalog::Default());
    library_ = new SessionLibrary(catalog_, {2, 4}, /*sessions_per_class=*/6,
                                  Rng(101));
  }
  static void TearDownTestSuite() {
    delete library_;
    delete catalog_;
    library_ = nullptr;
    catalog_ = nullptr;
  }

  std::vector<TenantSpec> MakeTenants(int count, uint64_t seed) {
    PopulationOptions options;
    options.node_sizes = {2, 4};
    Rng rng(seed);
    auto result = GenerateTenantPopulation(count, options, &rng);
    EXPECT_TRUE(result.ok());
    return *result;
  }

  static QueryCatalog* catalog_;
  static SessionLibrary* library_;
};

QueryCatalog* LogGeneratorTest::catalog_ = nullptr;
SessionLibrary* LogGeneratorTest::library_ = nullptr;

TEST_F(LogGeneratorTest, LibraryHasAllClasses) {
  for (int nodes : {2, 4}) {
    for (QuerySuite suite : {QuerySuite::kTpch, QuerySuite::kTpcds}) {
      auto sessions = library_->SessionsFor(nodes, suite);
      ASSERT_TRUE(sessions.ok());
      EXPECT_EQ((*sessions)->size(), 6u);
    }
  }
  EXPECT_EQ(library_->SessionsFor(8, QuerySuite::kTpch).status().code(),
            StatusCode::kNotFound);
}

TEST_F(LogGeneratorTest, ComposeProducesOneLogPerTenant) {
  LogComposerOptions options;
  options.horizon_days = 7;
  LogComposer composer(library_, options);
  auto tenants = MakeTenants(10, 1);
  Rng rng(2);
  auto logs = composer.Compose(&tenants, &rng);
  ASSERT_TRUE(logs.ok());
  ASSERT_EQ(logs->size(), 10u);
  for (size_t i = 0; i < logs->size(); ++i) {
    EXPECT_EQ((*logs)[i].tenant_id, tenants[i].id);
    EXPECT_FALSE((*logs)[i].entries.empty());
  }
}

TEST_F(LogGeneratorTest, AssignsTimeZoneOffsets) {
  LogComposerOptions options;
  options.horizon_days = 7;
  LogComposer composer(library_, options);
  auto tenants = MakeTenants(40, 3);
  Rng rng(4);
  ASSERT_TRUE(composer.Compose(&tenants, &rng).ok());
  std::set<int> offsets;
  for (const auto& t : tenants) {
    offsets.insert(t.time_zone_offset_hours);
    EXPECT_TRUE(std::count(options.offset_hours.begin(),
                           options.offset_hours.end(),
                           t.time_zone_offset_hours) > 0);
  }
  EXPECT_GT(offsets.size(), 3u);  // 40 tenants hit several of the 7 zones
}

TEST_F(LogGeneratorTest, WeekendsAreQuiet) {
  LogComposerOptions options;
  options.horizon_days = 14;
  options.offset_hours = {0};  // no spill from late time zones
  options.num_holidays = 0;
  LogComposer composer(library_, options);
  auto tenants = MakeTenants(5, 5);
  Rng rng(6);
  auto logs = composer.Compose(&tenants, &rng);
  ASSERT_TRUE(logs.ok());
  for (const auto& log : *logs) {
    // Saturday of week 1 is day 5; with offset 0 all sessions start and end
    // within the working day (max session start 14h + 3h + tail).
    double weekend_ratio =
        log.ActiveRatio(5 * kDay + 12 * kHour, 6 * kDay + 12 * kHour);
    EXPECT_EQ(weekend_ratio, 0) << "tenant " << log.tenant_id;
  }
}

TEST_F(LogGeneratorTest, EntriesClippedToHorizon) {
  LogComposerOptions options;
  options.horizon_days = 3;
  LogComposer composer(library_, options);
  auto tenants = MakeTenants(10, 7);
  Rng rng(8);
  auto logs = composer.Compose(&tenants, &rng);
  ASSERT_TRUE(logs.ok());
  for (const auto& log : *logs) {
    for (const auto& e : log.entries) {
      EXPECT_LT(e.submit_time, composer.horizon_end());
    }
  }
}

TEST_F(LogGeneratorTest, DeterministicFromSeed) {
  LogComposerOptions options;
  options.horizon_days = 5;
  LogComposer composer(library_, options);
  auto t1 = MakeTenants(8, 9);
  auto t2 = MakeTenants(8, 9);
  Rng rng1(10), rng2(10);
  auto l1 = composer.Compose(&t1, &rng1);
  auto l2 = composer.Compose(&t2, &rng2);
  ASSERT_TRUE(l1.ok() && l2.ok());
  for (size_t i = 0; i < l1->size(); ++i) {
    ASSERT_EQ((*l1)[i].entries.size(), (*l2)[i].entries.size());
    for (size_t j = 0; j < (*l1)[i].entries.size(); ++j) {
      EXPECT_EQ((*l1)[i].entries[j].submit_time,
                (*l2)[i].entries[j].submit_time);
    }
  }
}

TEST_F(LogGeneratorTest, ActiveTenantRatioInCalibratedBand) {
  // The time-average active-tenant ratio of generated logs. The substrate
  // is calibrated so the *consolidation behaviour* matches the paper
  // (tenant-group sizes ~11-15 at R=3, P=99.9%), which pins the
  // time-average ratio to a few percent; the paper's quoted "8.9%-12%"
  // cannot be this time-average, since its §7.4 variants (same per-tenant
  // activity, fewer time zones) raise it — see EXPERIMENTS.md.
  LogComposerOptions options;
  options.horizon_days = 14;
  LogComposer composer(library_, options);
  auto tenants = MakeTenants(60, 11);
  Rng rng(12);
  auto logs = composer.Compose(&tenants, &rng);
  ASSERT_TRUE(logs.ok());
  double ratio =
      AverageActiveTenantRatio(*logs, 0, composer.horizon_end());
  EXPECT_GT(ratio, 0.008);
  EXPECT_LT(ratio, 0.08);
}

TEST_F(LogGeneratorTest, NoLunchAndSingleZoneRaiseActiveRatio) {
  // §7.4's modifications: same-zone tenants without lunch hour overlap
  // far more.
  auto tenants_a = MakeTenants(40, 13);
  auto tenants_b = tenants_a;

  LogComposerOptions normal;
  normal.horizon_days = 7;
  LogComposerOptions crowded = normal;
  crowded.offset_hours = {0};
  crowded.lunch_break = false;

  Rng rng_a(14), rng_b(14);
  auto logs_a = LogComposer(library_, normal).Compose(&tenants_a, &rng_a);
  auto logs_b = LogComposer(library_, crowded).Compose(&tenants_b, &rng_b);
  ASSERT_TRUE(logs_a.ok() && logs_b.ok());
  // The time-average ratio is invariant: concentrating the same per-tenant
  // activity into fewer clock hours does not change total active time.
  double avg_a = AverageActiveTenantRatio(*logs_a, 0, 7 * kDay);
  double avg_b = AverageActiveTenantRatio(*logs_b, 0, 7 * kDay);
  EXPECT_NEAR(avg_b, avg_a, avg_a * 0.3);
  // The conditional (busy-epoch) ratio is what rises — the §7.4 effect.
  double cond_a = ConditionalActiveTenantRatio(*logs_a, 0, 7 * kDay);
  double cond_b = ConditionalActiveTenantRatio(*logs_b, 0, 7 * kDay);
  EXPECT_GT(cond_b, cond_a * 1.5);
}

TEST_F(LogGeneratorTest, ComposeActivityMatchesComposedLogs) {
  // The activity-only fast path must make the same sampling decisions as
  // the full composition: per-tenant activity intervals (clipped to the
  // horizon) agree exactly.
  LogComposerOptions options;
  options.horizon_days = 6;
  LogComposer composer(library_, options);
  auto tenants_a = MakeTenants(15, 21);
  auto tenants_b = tenants_a;
  Rng rng_a(22), rng_b(22);
  auto logs = composer.Compose(&tenants_a, &rng_a);
  auto activity = composer.ComposeActivity(&tenants_b, &rng_b);
  ASSERT_TRUE(logs.ok() && activity.ok());
  ASSERT_EQ(logs->size(), activity->size());
  for (size_t i = 0; i < logs->size(); ++i) {
    EXPECT_EQ(tenants_a[i].time_zone_offset_hours,
              tenants_b[i].time_zone_offset_hours);
    IntervalSet from_logs = (*logs)[i].ActivityIntervals().Clip(
        0, composer.horizon_end());
    IntervalSet direct = (*activity)[i].Clip(0, composer.horizon_end());
    EXPECT_EQ(from_logs.intervals(), direct.intervals())
        << "tenant " << (*logs)[i].tenant_id;
  }
}

TEST_F(LogGeneratorTest, ComposeIsByteIdenticalAcrossJobCounts) {
  // Tenant-sharded composition must produce byte-identical logs: every
  // tenant samples from its own id-keyed Rng stream, so the worker count
  // can only change scheduling, never content. Compare the serialized CSV.
  LogComposerOptions serial_options;
  serial_options.horizon_days = 6;
  LogComposer serial_composer(library_, serial_options);
  auto tenants_base = MakeTenants(20, 31);
  auto tenants_serial = tenants_base;
  Rng rng_serial(32);
  auto logs_serial = serial_composer.Compose(&tenants_serial, &rng_serial);
  ASSERT_TRUE(logs_serial.ok());
  std::ostringstream serial_csv;
  ASSERT_TRUE(WriteLogsCsv(*logs_serial, serial_csv).ok());

  for (int jobs : {2, 4}) {
    LogComposerOptions options = serial_options;
    options.jobs = jobs;
    LogComposer composer(library_, options);
    auto tenants = tenants_base;
    Rng rng(32);
    auto logs = composer.Compose(&tenants, &rng);
    ASSERT_TRUE(logs.ok()) << "jobs=" << jobs;
    std::ostringstream csv;
    ASSERT_TRUE(WriteLogsCsv(*logs, csv).ok());
    EXPECT_EQ(csv.str(), serial_csv.str()) << "jobs=" << jobs;
    for (size_t i = 0; i < tenants.size(); ++i) {
      EXPECT_EQ(tenants[i].time_zone_offset_hours,
                tenants_serial[i].time_zone_offset_hours);
    }
  }
}

TEST_F(LogGeneratorTest, ComposeActivityIdenticalAcrossJobCounts) {
  LogComposerOptions serial_options;
  serial_options.horizon_days = 6;
  LogComposer serial_composer(library_, serial_options);
  auto tenants_base = MakeTenants(20, 33);
  auto tenants_serial = tenants_base;
  Rng rng_serial(34);
  auto activity_serial =
      serial_composer.ComposeActivity(&tenants_serial, &rng_serial);
  ASSERT_TRUE(activity_serial.ok());

  for (int jobs : {2, 4}) {
    LogComposerOptions options = serial_options;
    options.jobs = jobs;
    LogComposer composer(library_, options);
    auto tenants = tenants_base;
    Rng rng(34);
    auto activity = composer.ComposeActivity(&tenants, &rng);
    ASSERT_TRUE(activity.ok()) << "jobs=" << jobs;
    ASSERT_EQ(activity->size(), activity_serial->size());
    for (size_t i = 0; i < activity->size(); ++i) {
      EXPECT_EQ((*activity)[i].intervals(),
                (*activity_serial)[i].intervals())
          << "jobs=" << jobs << " tenant " << tenants[i].id;
    }
  }
}

TEST_F(LogGeneratorTest, ComposeActivityVectorsMatchStreamedEpochization) {
  // The streamed compose->epochize path must make the same sampling
  // decisions as ComposeActivity and produce exactly
  // EpochizeIntervals(ComposeActivity sets) — at any job count.
  LogComposerOptions options;
  options.horizon_days = 10;
  LogComposer composer(library_, options);
  EpochConfig epochs;
  epochs.epoch_size = 10 * kSecond;
  epochs.begin = 0;
  epochs.end = composer.horizon_end();

  auto tenants = MakeTenants(12, 77);
  Rng rng(78);
  auto sets = composer.ComposeActivity(&tenants, &rng);
  ASSERT_TRUE(sets.ok());

  for (int jobs : {1, 3}) {
    LogComposerOptions jobbed = options;
    jobbed.jobs = jobs;
    LogComposer streamed_composer(library_, jobbed);
    auto streamed_tenants = MakeTenants(12, 77);
    Rng streamed_rng(78);
    auto vectors = streamed_composer.ComposeActivityVectors(
        &streamed_tenants, &streamed_rng, epochs);
    ASSERT_TRUE(vectors.ok()) << "jobs=" << jobs;
    ASSERT_EQ(vectors->size(), sets->size());
    for (size_t i = 0; i < vectors->size(); ++i) {
      EXPECT_EQ(streamed_tenants[i].time_zone_offset_hours,
                tenants[i].time_zone_offset_hours)
          << "jobs=" << jobs << " tenant " << tenants[i].id;
      ActivityVector expected =
          EpochizeIntervals(tenants[i].id, (*sets)[i], epochs);
      EXPECT_EQ((*vectors)[i].word_indices(), expected.word_indices())
          << "jobs=" << jobs << " tenant " << tenants[i].id;
      EXPECT_EQ((*vectors)[i].word_bits(), expected.word_bits())
          << "jobs=" << jobs << " tenant " << tenants[i].id;
      EXPECT_EQ((*vectors)[i].num_epochs(), expected.num_epochs())
          << "jobs=" << jobs << " tenant " << tenants[i].id;
    }
  }

  // An epoch grid that does not cover the horizon is rejected.
  EpochConfig short_grid = epochs;
  short_grid.end = composer.horizon_end() - kDay;
  auto rejected_tenants = MakeTenants(2, 79);
  Rng rejected_rng(80);
  EXPECT_EQ(composer
                .ComposeActivityVectors(&rejected_tenants, &rejected_rng,
                                        short_grid)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(LogGeneratorTest, RejectsBadOptions) {
  LogComposerOptions options;
  options.offset_hours.clear();
  LogComposer composer(library_, options);
  auto tenants = MakeTenants(2, 15);
  Rng rng(16);
  EXPECT_EQ(composer.Compose(&tenants, &rng).status().code(),
            StatusCode::kInvalidArgument);

  LogComposerOptions zero_days;
  zero_days.horizon_days = 0;
  LogComposer composer2(library_, zero_days);
  EXPECT_EQ(composer2.Compose(&tenants, &rng).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace thrifty
