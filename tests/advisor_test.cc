#include "core/deployment_advisor.h"

#include <gtest/gtest.h>

namespace thrifty {
namespace {

// Hand-built history: tenants with one activity burst per "day", staggered
// so tenants with different phases pack well.
class AdvisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const int sizes[] = {2, 2, 2, 2, 4, 4};
    for (int i = 0; i < 6; ++i) {
      TenantSpec spec;
      spec.id = i;
      spec.requested_nodes = sizes[i];
      spec.data_gb = 100.0 * sizes[i];
      tenants_.push_back(spec);

      TenantLog log;
      log.tenant_id = i;
      // Two days; burst phase depends on tenant id so same-size tenants
      // overlap pairwise but not all at once.
      for (int day = 0; day < 2; ++day) {
        QueryLogEntry entry;
        entry.submit_time = day * kDay + (i % 3) * 4 * kHour;
        entry.template_id = 0;
        entry.observed_latency = 1 * kHour;
        log.entries.push_back(entry);
      }
      logs_.push_back(log);
    }
  }

  std::vector<TenantSpec> tenants_;
  std::vector<TenantLog> logs_;
};

TEST_F(AdvisorTest, ProducesAValidPlan) {
  AdvisorOptions options;
  options.replication_factor = 2;
  options.sla_fraction = 0.99;
  options.epoch_size = 10 * kMinute;
  DeploymentAdvisor advisor(options);
  auto output = advisor.Advise(tenants_, logs_, 0, 2 * kDay);
  ASSERT_TRUE(output.ok()) << output.status();
  EXPECT_TRUE(output->excluded_tenants.empty());
  EXPECT_EQ(output->plan.replication_factor, 2);
  // Every tenant appears in exactly one group.
  size_t placed = 0;
  for (const auto& group : output->plan.groups) placed += group.tenants.size();
  EXPECT_EQ(placed, tenants_.size());
  // Groups are size-homogeneous (two-step step 1).
  for (const auto& group : output->plan.groups) {
    for (const auto& t : group.tenants) {
      EXPECT_EQ(t.requested_nodes, group.LargestTenantNodes());
    }
    EXPECT_EQ(group.cluster.NumMppdbs(), 2);
    EXPECT_GE(group.ttp, 0.99);
  }
  EXPECT_GT(output->plan.ConsolidationEffectiveness(), 0.0);
}

TEST_F(AdvisorTest, AlwaysActiveTenantExcluded) {
  // Tenant 0 becomes active around the clock.
  logs_[0].entries.clear();
  QueryLogEntry entry;
  entry.submit_time = 0;
  entry.template_id = 0;
  entry.observed_latency = 2 * kDay;
  logs_[0].entries.push_back(entry);

  AdvisorOptions options;
  options.replication_factor = 2;
  options.sla_fraction = 0.99;
  options.epoch_size = 10 * kMinute;
  options.always_active_threshold = 0.5;
  DeploymentAdvisor advisor(options);
  auto output = advisor.Advise(tenants_, logs_, 0, 2 * kDay);
  ASSERT_TRUE(output.ok());
  ASSERT_EQ(output->excluded_tenants.size(), 1u);
  EXPECT_EQ(output->excluded_tenants[0].id, 0);
  EXPECT_EQ(output->ExcludedNodes(), 2);
  // The excluded tenant is not in the plan.
  EXPECT_EQ(output->plan.GroupOf(0).status().code(), StatusCode::kNotFound);
}

TEST_F(AdvisorTest, FfdSolverSelectable) {
  AdvisorOptions options;
  options.replication_factor = 2;
  options.sla_fraction = 0.99;
  options.epoch_size = 10 * kMinute;
  options.solver = GroupingSolver::kFfd;
  DeploymentAdvisor advisor(options);
  auto output = advisor.Advise(tenants_, logs_, 0, 2 * kDay);
  ASSERT_TRUE(output.ok());
  size_t placed = 0;
  for (const auto& group : output->plan.groups) placed += group.tenants.size();
  EXPECT_EQ(placed, tenants_.size());
}

TEST_F(AdvisorTest, MissingHistoryFails) {
  logs_.pop_back();
  DeploymentAdvisor advisor;
  auto output = advisor.Advise(tenants_, logs_, 0, 2 * kDay);
  EXPECT_EQ(output.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(AdvisorTest, EmptyWindowFails) {
  DeploymentAdvisor advisor;
  EXPECT_EQ(advisor.Advise(tenants_, logs_, kDay, kDay).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(AdvisorTest, AllTenantsExcludedYieldsEmptyPlan) {
  for (auto& log : logs_) {
    log.entries.clear();
    QueryLogEntry entry;
    entry.submit_time = 0;
    entry.template_id = 0;
    entry.observed_latency = 2 * kDay;
    log.entries.push_back(entry);
  }
  AdvisorOptions options;
  options.always_active_threshold = 0.5;
  DeploymentAdvisor advisor(options);
  auto output = advisor.Advise(tenants_, logs_, 0, 2 * kDay);
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output->excluded_tenants.size(), 6u);
  EXPECT_TRUE(output->plan.groups.empty());
}

TEST_F(AdvisorTest, ImminentRegularBurstTenantExcluded) {
  // Tenant 0 bursts every day at the same hour across a 4-day history; the
  // next burst lands right after deployment, so burst screening excludes
  // it. Tenant 1 has the same volume in one irregular block and stays.
  logs_[0].entries.clear();
  logs_[1].entries.clear();
  for (int day = 0; day < 4; ++day) {
    logs_[0].entries.push_back(
        {day * kDay + 10 * kHour, 0, 4 * kHour, -1});
  }
  logs_[1].entries.push_back({2 * kDay, 0, 16 * kHour, -1});

  AdvisorOptions options;
  options.replication_factor = 2;
  options.sla_fraction = 0.99;
  options.epoch_size = 10 * kMinute;
  options.burst_exclusion_horizon = kDay;
  options.burst_detector.period = kDay;
  options.burst_detector.bin_size = kHour;
  options.burst_detector.burst_factor = 2.0;
  options.burst_detector.min_burst_ratio = 0.4;
  DeploymentAdvisor advisor(options);
  auto output = advisor.Advise(tenants_, logs_, 0, 4 * kDay);
  ASSERT_TRUE(output.ok()) << output.status();
  ASSERT_EQ(output->excluded_tenants.size(), 1u);
  EXPECT_EQ(output->excluded_tenants[0].id, 0);
  EXPECT_TRUE(output->plan.GroupOf(1).ok());
}

TEST_F(AdvisorTest, BothSolversConsolidate) {
  // On tiny mixed-size instances FFD can even beat two-step by letting
  // small tenants free-ride in big bins; the paper's superiority claim is
  // about realistic populations (covered by the fig7_* benches and
  // ffd_test). Here both solvers must simply produce valid, consolidating
  // plans.
  AdvisorOptions options;
  options.replication_factor = 2;
  options.sla_fraction = 0.99;
  options.epoch_size = 10 * kMinute;
  DeploymentAdvisor two_step(options);
  options.solver = GroupingSolver::kFfd;
  DeploymentAdvisor ffd(options);
  auto a = two_step.Advise(tenants_, logs_, 0, 2 * kDay);
  auto b = ffd.Advise(tenants_, logs_, 0, 2 * kDay);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_GT(a->plan.ConsolidationEffectiveness(), 0.0);
  EXPECT_GT(b->plan.ConsolidationEffectiveness(), 0.0);
}

}  // namespace
}  // namespace thrifty
