#include "workload/query_log.h"

#include <sstream>

#include <gtest/gtest.h>

namespace thrifty {
namespace {

TenantLog MakeLog(TenantId id) {
  TenantLog log;
  log.tenant_id = id;
  log.entries.push_back({10 * kSecond, 3, 5 * kSecond, -1});
  log.entries.push_back({30 * kSecond, 7, 20 * kSecond, 2});
  log.entries.push_back({35 * kSecond, 8, 25 * kSecond, 2});
  return log;
}

TEST(QueryLogTest, ActivityIntervalsMergeOverlaps) {
  TenantLog log = MakeLog(1);
  IntervalSet activity = log.ActivityIntervals();
  // [10,15) and [30,50)+[35,60) -> [30,60).
  ASSERT_EQ(activity.size(), 2u);
  EXPECT_EQ(activity.intervals()[0], (TimeInterval{10000, 15000}));
  EXPECT_EQ(activity.intervals()[1], (TimeInterval{30000, 60000}));
}

TEST(QueryLogTest, ActiveRatio) {
  TenantLog log = MakeLog(1);
  // Active 5 + 30 = 35 s out of 100 s.
  EXPECT_DOUBLE_EQ(log.ActiveRatio(0, 100 * kSecond), 0.35);
  EXPECT_EQ(log.ActiveRatio(100, 100), 0);
}

TEST(QueryLogTest, SortEntriesIsStable) {
  TenantLog log;
  log.tenant_id = 1;
  log.entries.push_back({50, 1, 10, -1});
  log.entries.push_back({10, 2, 10, -1});
  log.entries.push_back({50, 3, 10, -1});
  log.SortEntries();
  EXPECT_EQ(log.entries[0].template_id, 2);
  EXPECT_EQ(log.entries[1].template_id, 1);  // stable: 1 before 3
  EXPECT_EQ(log.entries[2].template_id, 3);
}

TEST(QueryLogTest, CsvRoundTrip) {
  std::vector<TenantLog> logs = {MakeLog(4), MakeLog(9)};
  std::ostringstream os;
  ASSERT_TRUE(WriteLogsCsv(logs, os).ok());
  std::istringstream is(os.str());
  auto parsed = ReadLogsCsv(is);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].tenant_id, 4);
  EXPECT_EQ((*parsed)[1].tenant_id, 9);
  for (size_t t = 0; t < 2; ++t) {
    ASSERT_EQ((*parsed)[t].entries.size(), 3u);
    for (size_t e = 0; e < 3; ++e) {
      EXPECT_EQ((*parsed)[t].entries[e].submit_time,
                logs[t].entries[e].submit_time);
      EXPECT_EQ((*parsed)[t].entries[e].template_id,
                logs[t].entries[e].template_id);
      EXPECT_EQ((*parsed)[t].entries[e].observed_latency,
                logs[t].entries[e].observed_latency);
      EXPECT_EQ((*parsed)[t].entries[e].batch_id, logs[t].entries[e].batch_id);
    }
  }
}

TEST(QueryLogTest, CsvRejectsGarbage) {
  {
    std::istringstream is("");
    EXPECT_EQ(ReadLogsCsv(is).status().code(), StatusCode::kInvalidArgument);
  }
  {
    std::istringstream is("not,a,header\n1,2,3,4,5\n");
    EXPECT_EQ(ReadLogsCsv(is).status().code(), StatusCode::kInvalidArgument);
  }
  {
    std::istringstream is(
        "tenant_id,submit_ms,template_id,latency_ms,batch_id\n1,2,3\n");
    EXPECT_EQ(ReadLogsCsv(is).status().code(), StatusCode::kInvalidArgument);
  }
  {
    std::istringstream is(
        "tenant_id,submit_ms,template_id,latency_ms,batch_id\n1,x,3,4,5\n");
    EXPECT_EQ(ReadLogsCsv(is).status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(QueryLogTest, AverageActiveTenantRatio) {
  // Tenant 1 active 25% of the window, tenant 2 active 75%.
  TenantLog a, b;
  a.tenant_id = 1;
  a.entries.push_back({0, 0, 25 * kSecond, -1});
  b.tenant_id = 2;
  b.entries.push_back({0, 0, 75 * kSecond, -1});
  double ratio = AverageActiveTenantRatio({a, b}, 0, 100 * kSecond);
  EXPECT_DOUBLE_EQ(ratio, 0.5);
}

TEST(QueryLogTest, ConditionalRatioExceedsAverageWhenConcentrated) {
  // Two tenants active in the same one-tenth of the window.
  TenantLog a, b;
  a.tenant_id = 1;
  a.entries.push_back({0, 0, 10 * kSecond, -1});
  b.tenant_id = 2;
  b.entries.push_back({0, 0, 10 * kSecond, -1});
  double average = AverageActiveTenantRatio({a, b}, 0, 100 * kSecond);
  double conditional =
      ConditionalActiveTenantRatio({a, b}, 0, 100 * kSecond, kSecond);
  EXPECT_DOUBLE_EQ(average, 0.1);
  EXPECT_DOUBLE_EQ(conditional, 1.0);  // both active in every busy epoch
}

TEST(QueryLogTest, ConditionalRatioEmptyInputs) {
  EXPECT_EQ(ConditionalActiveTenantRatio({}, 0, 100, 10), 0);
  TenantLog idle;
  idle.tenant_id = 1;
  EXPECT_EQ(ConditionalActiveTenantRatio({idle}, 0, 100, 10), 0);
}

}  // namespace
}  // namespace thrifty
